package emu

import (
	"fmt"

	"nacho/internal/compile"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/sim"
)

// This file is the AOT execution engine: the interpreter half of the
// compile/interpret split. internal/compile lowers the text segment once —
// at DecodeText time — into a threaded-code IR (pre-decoded operands,
// pre-resolved branch targets, fused superinstructions, per-slot ALU run
// lengths); this loop executes that IR with no per-step decode, no fetch
// bounds check on sequential flow, and direct-port memory access where the
// system offers one.
//
// Correctness is an extension of the fast path's safe-horizon argument.
// The outer loop (runSliceAOT) runs the exact per-boundary checks of
// runSliceRef. Before entering the inline dispatch loop it computes a guard:
// the smallest cycle at which any boundary event — power failure, cycle
// budget, forced-checkpoint trigger, RunUntil stop-point — could fire,
// pulled back by the width of the largest superinstruction. Below the guard
// every boundary check is statically false, so the inline loop may charge
// base cycles with a bare increment and skip the checks entirely; the moment
// the guard trips (including after a memory access whose dynamic cost jumped
// the clock), the loop commits the pc and returns to the outer checks, which
// fire the event at the byte-identical instant with byte-identical state.
// Anything the IR does not specialize executes through the reference step
// (stepChecked), and the machine commits m.pc before every call that can
// advance the clock, so checkpoint register snapshots and mid-access power
// failures observe exactly the reference interpreter's in-flight state.
// The three-way engine-equivalence suite in internal/harness enforces all of
// this rather than trusting the argument.
//
// For speed the dispatch loop mirrors the cycle and instruction counters in
// local variables (registers), so guard checks and base-cycle charging never
// touch memory. The mirrors are flushed to the machine before every external
// call, return, and power-failure panic, and reloaded after every call that
// can advance the clock — external code and post-slice inspection only ever
// see the authoritative fields in a consistent, reference-identical state.
// The direct-port tier of every memory case is likewise inlined: an exact
// copy of Machine.Advance's failure check against a hoisted nextFailure
// (legal because nextFailure and failEnabled only change in New/Fork/reboot
// or transiently inside external calls, never between the inline
// instructions of one dispatch loop), then a raw access through a loop-local
// page cache (aotPages), so a same-page hit is a handful of inline byte
// moves with no function call at all.

// aotMaxWidth is the widest superinstruction in the IR: a fused op retires
// up to this many architectural instructions (and charges this many base
// cycles) between guard checks, so the guard is pulled back by width-1.
const aotMaxWidth = 2

// aotGuard returns the inline window's cycle bound: while m.cycle is
// strictly below it, no per-boundary event can fire even across a full
// superinstruction. A zero return means the window is empty and the next
// instruction must take the reference step. Mirrors batchHorizon bound for
// bound; all arithmetic saturates rather than wraps.
func (m *Machine) aotGuard(maxCycles, period, margin uint64) uint64 {
	u := uint64(power.NoFailure)
	if m.failEnabled {
		if m.nextFailure <= m.cycle {
			return 0
		}
		// Base cycles inside the window must stay strictly before the
		// failure instant (Advance panics at nextFailure).
		u = m.nextFailure - 1
	}
	if maxCycles > 0 && maxCycles < u {
		u = maxCycles
	}
	if period > 0 && m.nextForced != power.NoFailure {
		t := uint64(0)
		if margin < m.nextForced {
			t = m.nextForced - margin
		}
		if t < u {
			u = t
		}
	}
	if m.stopAt != 0 && m.stopAt < u {
		u = m.stopAt
	}
	if u < aotMaxWidth-1 {
		return 0
	}
	return u - (aotMaxWidth - 1)
}

// runSliceAOT executes the compiled IR until halt or the next power failure.
// The loop structure and every per-boundary check mirror runSliceRef
// line for line; only the step in the middle differs.
func (m *Machine) runSliceAOT() error {
	prog := m.prog
	if prog == nil || len(prog.Code) == 0 {
		return m.runSliceRef()
	}
	var (
		maxInstr  = m.cfg.MaxInstructions
		maxCycles = m.cfg.MaxCycles
		period    = m.cfg.ForcedCheckpointPeriod
		margin    = m.cfg.ForcedCheckpointMargin
		code      = prog.Code
	)
	// The direct memory port, when the system offers one (volatile baseline,
	// unprobed): loads and stores bypass the sim.System interface for a
	// fixed-latency space access. Re-acquired each slice — forks bind to the
	// forked system, and probes attached at setup disable it.
	var port mem.DirectPort
	portOK := false
	if dm, ok := m.sys.(mem.DirectMemory); ok {
		port, portOK = dm.DirectPort()
	}
	// The cached-system fast port (NACHO and the cache-based baselines,
	// unprobed): plain hits bypass the sim.System interface below the safe
	// horizon; misses, metadata transitions, and near-horizon accesses fall
	// back to the full call. Also re-acquired each slice, and skipped
	// entirely when the cheaper direct port is available.
	var fport sim.FastPort
	if !portOK && !m.cfg.NoFastPort {
		if fm, ok := m.sys.(sim.FastMemory); ok {
			if p, pok := fm.FastPort(); pok {
				fport = p
			}
		}
	}
	instrGuard := maxInstr - (aotMaxWidth - 1)
	for !m.halted {
		if m.stopAt != 0 && m.cycle >= m.stopAt {
			return nil
		}
		if m.c.Instructions >= maxInstr {
			return fmt.Errorf("emu: instruction limit %d exceeded at pc=0x%08x", maxInstr, m.pc)
		}
		if maxCycles > 0 && m.cycle >= maxCycles {
			return fmt.Errorf("emu: %w (%d cycles) at pc=0x%08x", ErrCycleBudget, maxCycles, m.pc)
		}
		if period > 0 && m.nextForced != power.NoFailure && satAdd(m.cycle, margin) >= m.nextForced {
			m.sys.ForceCheckpoint()
			for m.nextForced != power.NoFailure && m.nextForced <= satAdd(m.cycle, margin) {
				m.nextForced = satAdd(m.nextForced, period)
			}
			if err := m.stepChecked(); err != nil {
				return err
			}
			continue
		}
		cycleGuard := m.aotGuard(maxCycles, period, margin)
		if m.cycle >= cycleGuard || m.c.Instructions >= instrGuard {
			// Inside the unsafe horizon: the reference step raises the
			// event (or executes the final pre-event instructions) exactly
			// as runSliceRef would.
			if err := m.stepChecked(); err != nil {
				return err
			}
			continue
		}
		if err := m.execAOT(code, port, fport, portOK, cycleGuard, instrGuard); err != nil {
			return err
		}
	}
	return nil
}

// alignErr reconstructs the reference interpreter's alignment error
// byte for byte (emu: pc ...: mem: misaligned ...).
func alignErr(pc, addr uint32, size int) error {
	return fmt.Errorf("emu: pc 0x%08x: %w", pc, &mem.AlignmentError{Addr: addr, Size: size})
}

// noPage is an impossible page key (keys are addr>>PageBits, PageBits > 0):
// the empty state of aotPages' cache entries. Cleared entries use it so the
// zero page (key 0) can never match a stale slot.
const noPage = ^uint32(0)

// aotPageSlots sizes the direct-mapped page cache below. Power of two;
// eight slots keep working sets that stride across a handful of pages
// (adjacency matrices, decode tables) hitting without growing the
// per-access index math.
const aotPageSlots = 8

// aotPages is the dispatch loop's own direct-mapped page cache over the
// direct port's space: a cached access is a shift, a masked index, a
// compare, and a few byte moves, all inline in execAOT (the Space-level
// lookup cannot inline — its miss-path call alone busts the inliner
// budget, which is also why the miss fills here are marked noinline: they
// must not be costed into the hit path). Cached pointers are dropped after
// every external call, because code behind the sim.System interface may
// write the space and so copy-on-write pages out from under the cache; the
// write-miss fill re-syncs the matching read slot for the same reason.
type aotPages struct {
	space *mem.Space
	r     [aotPageSlots]aotPageEnt
	w     [aotPageSlots]aotPageEnt
}

// aotPageEnt is one cache slot: a page key (addr >> PageBits; noPage when
// empty) and that page's storage.
type aotPageEnt struct {
	key uint32
	pg  *mem.PageData
}

// drop empties the cache; required at init (the zero value's keys would
// alias page 0) and after any call that may have written or forked the
// space.
func (p *aotPages) drop() {
	for i := range p.r {
		p.r[i].key, p.w[i].key = noPage, noPage
	}
}

// read returns the storage of the page holding addr for reading, or nil on
// a cache miss — the caller then fills with readMiss. The miss call is kept
// out of this function so the hit path fits the inliner budget; pairing the
// two is the call sites' job (always the two-line pattern
// `d := pages.read(addr); if d == nil { d = pages.readMiss(addr) }`).
func (p *aotPages) read(addr uint32) *mem.PageData {
	k := addr >> mem.PageBits
	e := &p.r[k&(aotPageSlots-1)]
	if e.key == k {
		return e.pg
	}
	return nil
}

// readMiss fills the slot for addr's page and returns its storage.
//
//go:noinline
func (p *aotPages) readMiss(addr uint32) *mem.PageData {
	k := addr >> mem.PageBits
	pg := p.space.ReadPage(addr)
	p.r[k&(aotPageSlots-1)] = aotPageEnt{key: k, pg: pg}
	return pg
}

// write returns exclusively owned storage of the page holding addr, or nil
// on a cache miss — the caller then fills with writeMiss (same split as
// read/readMiss).
func (p *aotPages) write(addr uint32) *mem.PageData {
	k := addr >> mem.PageBits
	e := &p.w[k&(aotPageSlots-1)]
	if e.key == k {
		return e.pg
	}
	return nil
}

// writeMiss fills the slot for addr's page and returns its storage.
//
//go:noinline
func (p *aotPages) writeMiss(addr uint32) *mem.PageData {
	k := addr >> mem.PageBits
	s := k & (aotPageSlots - 1)
	pg := p.space.WritePage(addr)
	p.w[s] = aotPageEnt{key: k, pg: pg}
	if p.r[s].key == k {
		// The copy-on-write inside WritePage may have replaced the page the
		// read slot cached.
		p.r[s].pg = pg
	}
	return pg
}

// execAOT is the inline dispatch loop. Entry contract: m.cycle < cycleGuard
// and m.c.Instructions < instrGuard (so at least one instruction executes),
// no probe is attached, and m.pc is the next instruction to execute. The
// loop keeps pc, the cycle counter, and the instruction counter in locals
// and commits them to the machine before anything that can observe it
// (memory systems, NotifySP, the reference step, the PowerFail panic) and
// at every exit. It returns nil when the guard trips, control leaves the
// text segment (the outer loop's reference step then reports the identical
// fetch error), or the program halts.
func (m *Machine) execAOT(code []compile.Inst, port mem.DirectPort, fport sim.FastPort, portOK bool, cycleGuard, instrGuard uint64) error {
	var (
		regs     = &m.regs
		textBase = m.textBase
		nCode    = uint32(len(code))
	)
	pc := m.pc
	off := pc - textBase
	if pc%4 != 0 || off>>2 >= nCode {
		return m.stepChecked() // identical out-of-text fetch error
	}
	idx := off >> 2
	cyc := m.cycle
	ins := m.c.Instructions
	// nextFailure hoisted for the inline copy of Advance in the direct-port
	// memory tier; NoFailure when failures are deferred, so the check below
	// can never fire spuriously.
	nf := uint64(power.NoFailure)
	if m.failEnabled {
		nf = m.nextFailure
	}
	pages := aotPages{space: port.Space}
	pages.drop()
	hitCyc := port.HitCycles
	// Fast-port hoists (nil funcs when the system offers no port, or the
	// direct port took precedence). A served hit charges fHitCyc locally —
	// the port never touches the clock — and the nf > cyc+fHitCyc pre-check
	// declines any access whose Advance would raise the power failure, so the
	// full call reproduces the failure at the byte-identical instant.
	fLoad, fStore, fHitCyc := fport.LoadHit, fport.StoreHit, fport.HitCycles
	for {
		// idx == nCode when sequential flow ran off the end of the text
		// segment; the outer loop's reference step reports the fetch error.
		if idx >= nCode || cyc >= cycleGuard || ins >= instrGuard {
			m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
			return nil
		}
		op := &code[idx]

		// Batched ALU runs: Run consecutive simple-ALU slots starting here.
		// The guard bounds shrink the batch so no boundary event can fire
		// inside it; both differences are positive (the guard check above
		// just passed), so k >= 1 and the batch always makes progress.
		if r := op.Run; r != 0 {
			k := uint64(r)
			if d := cycleGuard - cyc; d < k {
				k = d
			}
			if d := instrGuard - ins; d < k {
				k = d
			}
			for end := idx + uint32(k); idx < end; idx++ {
				op := &code[idx]
				rs1, rs2, imm := regs[op.Rs1], regs[op.Rs2], op.Imm
				var v uint32
				switch op.Op {
				case compile.Addi:
					v = rs1 + imm
				case compile.Add:
					v = rs1 + rs2
				case compile.Lui:
					v = imm
				case compile.Auipc:
					v = pc + imm
				case compile.Slti:
					v = boolToU32(int32(rs1) < int32(imm))
				case compile.Sltiu:
					v = boolToU32(rs1 < imm)
				case compile.Xori:
					v = rs1 ^ imm
				case compile.Ori:
					v = rs1 | imm
				case compile.Andi:
					v = rs1 & imm
				case compile.Slli:
					v = rs1 << (imm & 31)
				case compile.Srli:
					v = rs1 >> (imm & 31)
				case compile.Srai:
					v = uint32(int32(rs1) >> (imm & 31))
				case compile.Sub:
					v = rs1 - rs2
				case compile.Sll:
					v = rs1 << (rs2 & 31)
				case compile.Slt:
					v = boolToU32(int32(rs1) < int32(rs2))
				case compile.Sltu:
					v = boolToU32(rs1 < rs2)
				case compile.Xor:
					v = rs1 ^ rs2
				case compile.Srl:
					v = rs1 >> (rs2 & 31)
				case compile.Sra:
					v = uint32(int32(rs1) >> (rs2 & 31))
				case compile.Or:
					v = rs1 | rs2
				case compile.And:
					v = rs1 & rs2
				case compile.Mul:
					v = rs1 * rs2
				case compile.Mulh:
					v = uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32)
				case compile.Mulhsu:
					v = uint32(uint64(int64(int32(rs1))*int64(rs2)) >> 32)
				case compile.Mulhu:
					v = uint32(uint64(rs1) * uint64(rs2) >> 32)
				case compile.Div:
					v = divSigned(rs1, rs2)
				case compile.Divu:
					if rs2 == 0 {
						v = ^uint32(0)
					} else {
						v = rs1 / rs2
					}
				case compile.Rem:
					v = remSigned(rs1, rs2)
				case compile.Remu:
					if rs2 == 0 {
						v = rs1
					} else {
						v = rs1 % rs2
					}
				}
				regs[op.Rd] = v
				pc += 4
			}
			cyc += k
			ins += k
			continue
		}

		switch op.Op {
		case compile.TimedNop:
			cyc++
			ins++
			idx++
			pc += 4

		case compile.AddiSP:
			cyc++
			ins++
			v := regs[op.Rs1] + op.Imm
			// NotifySP may observe the machine (and, on tracking systems,
			// advance the clock): flush the mirrors around the call.
			m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
			regs[op.Rd] = v
			if v < m.initialSP-stackGuard || v > m.initialSP {
				m.stackFault = true
			}
			m.sys.NotifySP(v)
			cyc, ins = m.cycle, m.c.Instructions
			pages.drop()
			idx++
			pc += 4
			if m.stackFault {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
				return fmt.Errorf("emu: stack pointer 0x%08x left the stack region at pc=0x%08x", v, pc)
			}

		case compile.Halt:
			cyc++
			ins++
			m.halted = true
			m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+4
			return nil

		case compile.Jmp:
			cyc++
			ins++
			if op.Target == compile.InvalidTarget {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
				return nil
			}
			idx = op.Target
			pc = textBase + op.Target*4

		case compile.Jal:
			cyc++
			ins++
			regs[op.Rd] = pc + 4
			if op.Target == compile.InvalidTarget {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
				return nil
			}
			idx = op.Target
			pc = textBase + op.Target*4

		case compile.JmpReg:
			cyc++
			ins++
			np := (regs[op.Rs1] + op.Imm) &^ 1
			pc = np
			if o := np - textBase; np%4 == 0 && o>>2 < nCode {
				idx = o >> 2
			} else {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, np
				return nil
			}

		case compile.Jalr:
			cyc++
			ins++
			np := (regs[op.Rs1] + op.Imm) &^ 1
			regs[op.Rd] = pc + 4
			pc = np
			if o := np - textBase; np%4 == 0 && o>>2 < nCode {
				idx = o >> 2
			} else {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, np
				return nil
			}

		case compile.Beq:
			cyc++
			ins++
			if regs[op.Rs1] == regs[op.Rs2] {
				if op.Target == compile.InvalidTarget {
					m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
					return nil
				}
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx++
				pc += 4
			}

		case compile.Bne:
			cyc++
			ins++
			if regs[op.Rs1] != regs[op.Rs2] {
				if op.Target == compile.InvalidTarget {
					m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
					return nil
				}
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx++
				pc += 4
			}

		case compile.Blt:
			cyc++
			ins++
			if int32(regs[op.Rs1]) < int32(regs[op.Rs2]) {
				if op.Target == compile.InvalidTarget {
					m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
					return nil
				}
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx++
				pc += 4
			}

		case compile.Bge:
			cyc++
			ins++
			if int32(regs[op.Rs1]) >= int32(regs[op.Rs2]) {
				if op.Target == compile.InvalidTarget {
					m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
					return nil
				}
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx++
				pc += 4
			}

		case compile.Bltu:
			cyc++
			ins++
			if regs[op.Rs1] < regs[op.Rs2] {
				if op.Target == compile.InvalidTarget {
					m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
					return nil
				}
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx++
				pc += 4
			}

		case compile.Bgeu:
			cyc++
			ins++
			if regs[op.Rs1] >= regs[op.Rs2] {
				if op.Target == compile.InvalidTarget {
					m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+op.Imm
					return nil
				}
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx++
				pc += 4
			}

		case compile.Lw:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Loads++
			if addr%4 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
				return alignErr(pc, addr, 4)
			}
			m.pc = pc
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				o := addr & mem.PageMask &^ 3
				regs[op.Rd] = uint32(d[o]) | uint32(d[o+1])<<8 | uint32(d[o+2])<<16 | uint32(d[o+3])<<24
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					var fv uint32
					if fv, served = fLoad(addr, 4); served {
						cyc += fHitCyc
						regs[op.Rd] = fv
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					regs[op.Rd] = m.aotLoad(addr, 4)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			idx++
			pc += 4

		case compile.Lh:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Loads++
			if addr%2 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
				return alignErr(pc, addr, 2)
			}
			m.pc = pc
			var v uint32
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				o := addr & mem.PageMask &^ 1
				v = uint32(d[o]) | uint32(d[o+1])<<8
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if v, served = fLoad(addr, 2); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					v = m.aotLoad(addr, 2)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			regs[op.Rd] = uint32(int32(v<<16) >> 16)
			idx++
			pc += 4

		case compile.Lb:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Loads++
			m.pc = pc
			var v uint32
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				v = uint32(d[addr&mem.PageMask])
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if v, served = fLoad(addr, 1); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					v = m.aotLoad(addr, 1)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			regs[op.Rd] = uint32(int32(v<<24) >> 24)
			idx++
			pc += 4

		case compile.Lhu:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Loads++
			if addr%2 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
				return alignErr(pc, addr, 2)
			}
			m.pc = pc
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				o := addr & mem.PageMask &^ 1
				regs[op.Rd] = uint32(d[o]) | uint32(d[o+1])<<8
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					var fv uint32
					if fv, served = fLoad(addr, 2); served {
						cyc += fHitCyc
						regs[op.Rd] = fv
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					regs[op.Rd] = m.aotLoad(addr, 2)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			idx++
			pc += 4

		case compile.Lbu:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Loads++
			m.pc = pc
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				regs[op.Rd] = uint32(d[addr&mem.PageMask])
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					var fv uint32
					if fv, served = fLoad(addr, 1); served {
						cyc += fHitCyc
						regs[op.Rd] = fv
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					regs[op.Rd] = m.aotLoad(addr, 1)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			idx++
			pc += 4

		case compile.Sw:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Stores++
			if addr%4 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
				return alignErr(pc, addr, 4)
			}
			m.pc = pc
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.write(addr)
				if d == nil {
					d = pages.writeMiss(addr)
				}
				o := addr & mem.PageMask &^ 3
				v := regs[op.Rs2]
				d[o], d[o+1], d[o+2], d[o+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
			} else {
				served := false
				if fStore != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if served = fStore(addr, 4, regs[op.Rs2]); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					m.aotStore(addr, 4, regs[op.Rs2])
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
					if m.halted {
						m.pc = pc + 4
						return nil
					}
				}
			}
			idx++
			pc += 4

		case compile.Sh:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Stores++
			if addr%2 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
				return alignErr(pc, addr, 2)
			}
			m.pc = pc
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.write(addr)
				if d == nil {
					d = pages.writeMiss(addr)
				}
				o := addr & mem.PageMask &^ 1
				v := regs[op.Rs2]
				d[o], d[o+1] = byte(v), byte(v>>8)
			} else {
				served := false
				if fStore != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if served = fStore(addr, 2, regs[op.Rs2]&0xFFFF); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					m.aotStore(addr, 2, regs[op.Rs2])
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
					if m.halted {
						m.pc = pc + 4
						return nil
					}
				}
			}
			idx++
			pc += 4

		case compile.Sb:
			addr := regs[op.Rs1] + op.Imm
			cyc++
			ins++
			m.c.Stores++
			m.pc = pc
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.write(addr)
				if d == nil {
					d = pages.writeMiss(addr)
				}
				d[addr&mem.PageMask] = byte(regs[op.Rs2])
			} else {
				served := false
				if fStore != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if served = fStore(addr, 1, regs[op.Rs2]&0xFF); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					m.aotStore(addr, 1, regs[op.Rs2])
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
					if m.halted {
						m.pc = pc + 4
						return nil
					}
				}
			}
			idx++
			pc += 4

		case compile.LuiAddi:
			regs[op.Rd] = op.Imm
			cyc += 2
			ins += 2
			idx += 2
			pc += 8

		case compile.AddiLw:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			cyc += 2
			ins += 2
			m.c.Loads++
			if addr%4 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+4
				return alignErr(pc+4, addr, 4)
			}
			m.pc = pc + 4
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				o := addr & mem.PageMask &^ 3
				regs[op.Rd] = uint32(d[o]) | uint32(d[o+1])<<8 | uint32(d[o+2])<<16 | uint32(d[o+3])<<24
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					var fv uint32
					if fv, served = fLoad(addr, 4); served {
						cyc += fHitCyc
						regs[op.Rd] = fv
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					regs[op.Rd] = m.aotLoad(addr, 4)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			idx += 2
			pc += 8

		case compile.AddiLh:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			cyc += 2
			ins += 2
			m.c.Loads++
			if addr%2 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+4
				return alignErr(pc+4, addr, 2)
			}
			m.pc = pc + 4
			var v uint32
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				o := addr & mem.PageMask &^ 1
				v = uint32(d[o]) | uint32(d[o+1])<<8
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if v, served = fLoad(addr, 2); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					v = m.aotLoad(addr, 2)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			regs[op.Rd] = uint32(int32(v<<16) >> 16)
			idx += 2
			pc += 8

		case compile.AddiLb:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			cyc += 2
			ins += 2
			m.c.Loads++
			m.pc = pc + 4
			var v uint32
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				v = uint32(d[addr&mem.PageMask])
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if v, served = fLoad(addr, 1); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					v = m.aotLoad(addr, 1)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			regs[op.Rd] = uint32(int32(v<<24) >> 24)
			idx += 2
			pc += 8

		case compile.AddiLhu:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			cyc += 2
			ins += 2
			m.c.Loads++
			if addr%2 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+4
				return alignErr(pc+4, addr, 2)
			}
			m.pc = pc + 4
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				o := addr & mem.PageMask &^ 1
				regs[op.Rd] = uint32(d[o]) | uint32(d[o+1])<<8
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					var fv uint32
					if fv, served = fLoad(addr, 2); served {
						cyc += fHitCyc
						regs[op.Rd] = fv
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					regs[op.Rd] = m.aotLoad(addr, 2)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			idx += 2
			pc += 8

		case compile.AddiLbu:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			cyc += 2
			ins += 2
			m.c.Loads++
			m.pc = pc + 4
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.read(addr)
				if d == nil {
					d = pages.readMiss(addr)
				}
				regs[op.Rd] = uint32(d[addr&mem.PageMask])
			} else {
				served := false
				if fLoad != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					var fv uint32
					if fv, served = fLoad(addr, 1); served {
						cyc += fHitCyc
						regs[op.Rd] = fv
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					regs[op.Rd] = m.aotLoad(addr, 1)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
				}
			}
			idx += 2
			pc += 8

		case compile.AddiSw:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			val := regs[op.Rd]
			cyc += 2
			ins += 2
			m.c.Stores++
			if addr%4 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+4
				return alignErr(pc+4, addr, 4)
			}
			m.pc = pc + 4
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.write(addr)
				if d == nil {
					d = pages.writeMiss(addr)
				}
				o := addr & mem.PageMask &^ 3
				d[o], d[o+1], d[o+2], d[o+3] = byte(val), byte(val>>8), byte(val>>16), byte(val>>24)
			} else {
				served := false
				if fStore != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if served = fStore(addr, 4, val); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					m.aotStore(addr, 4, val)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
					if m.halted {
						m.pc = pc + 8
						return nil
					}
				}
			}
			idx += 2
			pc += 8

		case compile.AddiSh:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			val := regs[op.Rd]
			cyc += 2
			ins += 2
			m.c.Stores++
			if addr%2 != 0 {
				m.cycle, m.c.Instructions, m.pc = cyc, ins, pc+4
				return alignErr(pc+4, addr, 2)
			}
			m.pc = pc + 4
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.write(addr)
				if d == nil {
					d = pages.writeMiss(addr)
				}
				o := addr & mem.PageMask &^ 1
				d[o], d[o+1] = byte(val), byte(val>>8)
			} else {
				served := false
				if fStore != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if served = fStore(addr, 2, val&0xFFFF); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					m.aotStore(addr, 2, val)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
					if m.halted {
						m.pc = pc + 8
						return nil
					}
				}
			}
			idx += 2
			pc += 8

		case compile.AddiSb:
			t := regs[op.Rs1] + op.Imm
			regs[op.Rs2] = t
			addr := t + op.Target
			val := regs[op.Rd]
			cyc += 2
			ins += 2
			m.c.Stores++
			m.pc = pc + 4
			if portOK && addr-MMIOBase >= 0x1000 {
				m.c.CacheHits++
				cyc += hitCyc
				if nf <= cyc {
					m.cycle, m.c.Instructions = nf, ins
					panic(sim.PowerFail{})
				}
				d := pages.write(addr)
				if d == nil {
					d = pages.writeMiss(addr)
				}
				d[addr&mem.PageMask] = byte(val)
			} else {
				served := false
				if fStore != nil && addr-MMIOBase >= 0x1000 && nf > cyc+fHitCyc {
					if served = fStore(addr, 1, val&0xFF); served {
						cyc += fHitCyc
					}
				}
				if !served {
					m.cycle, m.c.Instructions = cyc, ins
					m.aotStore(addr, 1, val)
					cyc, ins = m.cycle, m.c.Instructions
					pages.drop()
					if m.halted {
						m.pc = pc + 8
						return nil
					}
				}
			}
			idx += 2
			pc += 8

		case compile.SltBne:
			v := boolToU32(int32(regs[op.Rs1]) < int32(regs[op.Rs2]))
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v != 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltuBne:
			v := boolToU32(regs[op.Rs1] < regs[op.Rs2])
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v != 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltBeq:
			v := boolToU32(int32(regs[op.Rs1]) < int32(regs[op.Rs2]))
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v == 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltuBeq:
			v := boolToU32(regs[op.Rs1] < regs[op.Rs2])
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v == 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltiBne:
			v := boolToU32(int32(regs[op.Rs1]) < int32(op.Imm))
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v != 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltiuBne:
			v := boolToU32(regs[op.Rs1] < op.Imm)
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v != 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltiBeq:
			v := boolToU32(int32(regs[op.Rs1]) < int32(op.Imm))
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v == 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		case compile.SltiuBeq:
			v := boolToU32(regs[op.Rs1] < op.Imm)
			regs[op.Rd] = v
			cyc += 2
			ins += 2
			if v == 0 {
				idx = op.Target
				pc = textBase + op.Target*4
			} else {
				idx += 2
				pc += 8
			}

		default: // compile.RefStep
			m.cycle, m.c.Instructions, m.pc = cyc, ins, pc
			if err := m.stepChecked(); err != nil {
				return err
			}
			cyc, ins = m.cycle, m.c.Instructions
			pages.drop()
			if m.halted {
				return nil
			}
			pc = m.pc
			if o := pc - textBase; pc%4 == 0 && o>>2 < nCode {
				idx = o >> 2
			} else {
				return nil // outer loop reports the fetch error
			}
		}
	}
}

// aotLoad serves the slow tier of one data read — an MMIO address, or a
// system without a direct port — with the pc and counters already committed
// and the base cycle, instruction, and load counters already charged. It
// reproduces the reference interpreter's load path exactly: MMIO reads
// advance one cycle and return zero; everything else goes through the
// pre-bound system func. Either Advance may raise the scheduled power
// failure, exactly as on the reference path.
func (m *Machine) aotLoad(addr uint32, size int) uint32 {
	if addr >= MMIOBase && addr < MMIOBase+0x1000 {
		m.Advance(1)
		return 0
	}
	return m.sysLoad(addr, size)
}

// aotStore is aotLoad's store counterpart, including the MMIO side effects
// (halt, result, output) and the sub-word value masking the reference path
// applies before handing stores to the system.
func (m *Machine) aotStore(addr uint32, size int, val uint32) {
	if addr >= MMIOBase && addr < MMIOBase+0x1000 {
		m.Advance(1)
		switch addr {
		case ExitAddr:
			m.halted = true
			m.exitCode = val
		case ResultAddr:
			m.results = append(m.results, val)
		case PutcharAddr:
			m.output = append(m.output, byte(val))
		}
		return
	}
	switch size {
	case 1:
		val &= 0xFF
	case 2:
		val &= 0xFFFF
	}
	m.sysStore(addr, size, val)
}
