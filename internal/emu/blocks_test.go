package emu

import (
	"testing"

	"nacho/internal/isa"
)

// i is shorthand for building test instruction sequences.
func alu(rd isa.Reg) isa.Instr {
	return isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: 1}
}

func TestAnalyzeEmptyText(t *testing.T) {
	tx := NewText(nil)
	if tx.Len() != 0 || tx.Blocks != nil || tx.aluRun != nil {
		t.Fatalf("empty text: Len=%d Blocks=%v aluRun=%v", tx.Len(), tx.Blocks, tx.aluRun)
	}
}

func TestAnalyzeStraightLine(t *testing.T) {
	tx := NewText([]isa.Instr{
		alu(isa.Reg(5)),
		alu(isa.Reg(6)),
		alu(isa.Reg(7)),
	})
	if len(tx.Blocks) != 1 {
		t.Fatalf("blocks = %v, want one", tx.Blocks)
	}
	b := tx.Blocks[0]
	if b.Start != 0 || b.Len != 3 || b.ALUPrefix != 3 {
		t.Fatalf("block = %+v, want {0 3 3}", b)
	}
	for i, want := range []uint32{3, 2, 1} {
		if tx.aluRun[i] != want {
			t.Fatalf("aluRun[%d] = %d, want %d", i, tx.aluRun[i], want)
		}
	}
}

func TestAnalyzeBranchSplitsBlocks(t *testing.T) {
	// 0: addi x5
	// 1: beq x0, x0, +8 (target index 3)  — terminator, target leader
	// 2: addi x6                          — fall-through leader
	// 3: addi x7                          — branch-target leader
	// 4: ebreak                           — terminator
	instrs := []isa.Instr{
		alu(isa.Reg(5)),
		{Op: isa.BEQ, Rs1: isa.Zero, Rs2: isa.Zero, Imm: 8},
		alu(isa.Reg(6)),
		alu(isa.Reg(7)),
		{Op: isa.EBREAK},
	}
	tx := NewText(instrs)
	want := []Block{
		{Start: 0, Len: 2, ALUPrefix: 1},
		{Start: 2, Len: 1, ALUPrefix: 1},
		{Start: 3, Len: 2, ALUPrefix: 1},
	}
	if len(tx.Blocks) != len(want) {
		t.Fatalf("blocks = %+v, want %+v", tx.Blocks, want)
	}
	for i := range want {
		if tx.Blocks[i] != want[i] {
			t.Fatalf("block[%d] = %+v, want %+v", i, tx.Blocks[i], want[i])
		}
	}
	// Runs cross the fall-through boundary between index 2 and 3: entering
	// the next block without a control transfer is sequential execution.
	for i, want := range []uint32{1, 0, 2, 1, 0} {
		if tx.aluRun[i] != want {
			t.Fatalf("aluRun[%d] = %d, want %d", i, tx.aluRun[i], want)
		}
	}
}

func TestAnalyzeBlocksPartitionText(t *testing.T) {
	// The block list must tile [0, n) exactly, whatever the input.
	instrs := []isa.Instr{
		{Op: isa.JAL, Rd: isa.RA, Imm: 8},
		alu(isa.Reg(5)),
		{Op: isa.LW, Rd: isa.Reg(6), Rs1: isa.SP},
		{Op: isa.BNE, Rs1: isa.Reg(5), Rs2: isa.Reg(6), Imm: -8},
		{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA},
		alu(isa.Reg(8)),
	}
	tx := NewText(instrs)
	pos := 0
	for _, b := range tx.Blocks {
		if b.Start != pos || b.Len <= 0 {
			t.Fatalf("blocks %+v do not partition %d instructions", tx.Blocks, len(instrs))
		}
		if b.ALUPrefix < 0 || b.ALUPrefix > b.Len {
			t.Fatalf("block %+v: ALUPrefix out of range", b)
		}
		pos += b.Len
	}
	if pos != len(instrs) {
		t.Fatalf("blocks %+v cover %d of %d instructions", tx.Blocks, pos, len(instrs))
	}
}

func TestBatchableExcludesSpecialDestinations(t *testing.T) {
	cases := []struct {
		in   isa.Instr
		want bool
	}{
		{alu(isa.Reg(5)), true},
		{isa.Instr{Op: isa.MUL, Rd: isa.Reg(9), Rs1: isa.Reg(5), Rs2: isa.Reg(6)}, true},
		{isa.Instr{Op: isa.ADDI, Rd: isa.Zero, Rs1: isa.Zero}, false},       // x0 write: discarded
		{isa.Instr{Op: isa.ADDI, Rd: isa.SP, Rs1: isa.SP, Imm: -16}, false}, // sp write: stack guard
		{isa.Instr{Op: isa.LW, Rd: isa.Reg(5), Rs1: isa.SP}, false},         // memory
		{isa.Instr{Op: isa.JAL, Rd: isa.RA}, false},                         // control
		{isa.Instr{Op: isa.FENCE}, false},                                   // system
	}
	for _, c := range cases {
		if got := batchable(&c.in); got != c.want {
			t.Errorf("batchable(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAnalyzeBranchTargetBreaksNothing(t *testing.T) {
	// A backward branch into the middle of an ALU run: the run table is
	// unaffected (it is valid from any entry index); only the block partition
	// gains a leader.
	instrs := []isa.Instr{
		alu(isa.Reg(5)),
		alu(isa.Reg(6)), // branch target
		alu(isa.Reg(7)),
		{Op: isa.BLT, Rs1: isa.Reg(5), Rs2: isa.Reg(7), Imm: -8},
	}
	tx := NewText(instrs)
	for i, want := range []uint32{3, 2, 1, 0} {
		if tx.aluRun[i] != want {
			t.Fatalf("aluRun[%d] = %d, want %d", i, tx.aluRun[i], want)
		}
	}
	want := []Block{
		{Start: 0, Len: 1, ALUPrefix: 1},
		{Start: 1, Len: 3, ALUPrefix: 2},
	}
	for i := range want {
		if tx.Blocks[i] != want[i] {
			t.Fatalf("block[%d] = %+v, want %+v", i, tx.Blocks[i], want[i])
		}
	}
}
