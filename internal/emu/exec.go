package emu

import (
	"fmt"

	"nacho/internal/isa"
	"nacho/internal/sim"
)

// step executes one instruction. Effects are ordered so that a power failure
// (panic out of any Advance) leaves the architectural register state and PC
// untouched: base cycle first, then memory effects, then register/PC commit.
func (m *Machine) step() error {
	in, err := m.fetch()
	if err != nil {
		return err
	}
	issue := m.cycle
	m.Advance(1) // base cycle (in-order single-issue pipeline)
	m.c.Instructions++
	if m.probe != nil {
		// Cycle is the issue instant, matching the historical trace format;
		// emission waits until the base cycle is charged so an instruction
		// killed by a power failure in that cycle never appears retired.
		m.probe.OnRetire(sim.RetireEvent{Cycle: issue, PC: m.pc, Instr: in})
	}

	rs1 := m.regs[in.Rs1]
	rs2 := m.regs[in.Rs2]
	imm := uint32(in.Imm)
	next := m.pc + 4

	switch in.Op {
	case isa.LUI:
		m.setReg(in.Rd, imm)
	case isa.AUIPC:
		m.setReg(in.Rd, m.pc+imm)
	case isa.JAL:
		m.setReg(in.Rd, next)
		next = m.pc + imm
	case isa.JALR:
		t := next
		next = (rs1 + imm) &^ 1
		m.setReg(in.Rd, t)

	case isa.BEQ:
		if rs1 == rs2 {
			next = m.pc + imm
		}
	case isa.BNE:
		if rs1 != rs2 {
			next = m.pc + imm
		}
	case isa.BLT:
		if int32(rs1) < int32(rs2) {
			next = m.pc + imm
		}
	case isa.BGE:
		if int32(rs1) >= int32(rs2) {
			next = m.pc + imm
		}
	case isa.BLTU:
		if rs1 < rs2 {
			next = m.pc + imm
		}
	case isa.BGEU:
		if rs1 >= rs2 {
			next = m.pc + imm
		}

	case isa.LB, isa.LH, isa.LW, isa.LBU, isa.LHU:
		m.c.Loads++
		addr := rs1 + imm
		size := in.Op.AccessSize()
		v, err := m.load(addr, size)
		if err != nil {
			return err
		}
		switch in.Op {
		case isa.LB:
			v = uint32(int32(v<<24) >> 24)
		case isa.LH:
			v = uint32(int32(v<<16) >> 16)
		}
		m.setReg(in.Rd, v)

	case isa.SB, isa.SH, isa.SW:
		m.c.Stores++
		addr := rs1 + imm
		if err := m.store(addr, in.Op.AccessSize(), rs2); err != nil {
			return err
		}

	case isa.ADDI:
		m.setReg(in.Rd, rs1+imm)
	case isa.SLTI:
		m.setReg(in.Rd, boolToU32(int32(rs1) < int32(imm)))
	case isa.SLTIU:
		m.setReg(in.Rd, boolToU32(rs1 < imm))
	case isa.XORI:
		m.setReg(in.Rd, rs1^imm)
	case isa.ORI:
		m.setReg(in.Rd, rs1|imm)
	case isa.ANDI:
		m.setReg(in.Rd, rs1&imm)
	case isa.SLLI:
		m.setReg(in.Rd, rs1<<(imm&31))
	case isa.SRLI:
		m.setReg(in.Rd, rs1>>(imm&31))
	case isa.SRAI:
		m.setReg(in.Rd, uint32(int32(rs1)>>(imm&31)))

	case isa.ADD:
		m.setReg(in.Rd, rs1+rs2)
	case isa.SUB:
		m.setReg(in.Rd, rs1-rs2)
	case isa.SLL:
		m.setReg(in.Rd, rs1<<(rs2&31))
	case isa.SLT:
		m.setReg(in.Rd, boolToU32(int32(rs1) < int32(rs2)))
	case isa.SLTU:
		m.setReg(in.Rd, boolToU32(rs1 < rs2))
	case isa.XOR:
		m.setReg(in.Rd, rs1^rs2)
	case isa.SRL:
		m.setReg(in.Rd, rs1>>(rs2&31))
	case isa.SRA:
		m.setReg(in.Rd, uint32(int32(rs1)>>(rs2&31)))
	case isa.OR:
		m.setReg(in.Rd, rs1|rs2)
	case isa.AND:
		m.setReg(in.Rd, rs1&rs2)

	case isa.MUL:
		m.setReg(in.Rd, rs1*rs2)
	case isa.MULH:
		m.setReg(in.Rd, uint32(uint64(int64(int32(rs1))*int64(int32(rs2)))>>32))
	case isa.MULHSU:
		m.setReg(in.Rd, uint32(uint64(int64(int32(rs1))*int64(rs2))>>32))
	case isa.MULHU:
		m.setReg(in.Rd, uint32(uint64(rs1)*uint64(rs2)>>32))
	case isa.DIV:
		m.setReg(in.Rd, divSigned(rs1, rs2))
	case isa.DIVU:
		if rs2 == 0 {
			m.setReg(in.Rd, ^uint32(0))
		} else {
			m.setReg(in.Rd, rs1/rs2)
		}
	case isa.REM:
		m.setReg(in.Rd, remSigned(rs1, rs2))
	case isa.REMU:
		if rs2 == 0 {
			m.setReg(in.Rd, rs1)
		} else {
			m.setReg(in.Rd, rs1%rs2)
		}

	case isa.FENCE:
		// No memory reordering to order.
	case isa.EBREAK:
		// Clean halt (debug breakpoint doubles as "end of program").
		m.halted = true
	case isa.ECALL:
		return fmt.Errorf("emu: unsupported ecall at pc 0x%08x", m.pc)
	default:
		return fmt.Errorf("emu: unexecutable op %v at pc 0x%08x", in.Op, m.pc)
	}

	m.pc = next
	return nil
}

func boolToU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func divSigned(a, b uint32) uint32 {
	sa, sb := int32(a), int32(b)
	switch {
	case sb == 0:
		return ^uint32(0)
	case sa == -1<<31 && sb == -1:
		return a
	default:
		return uint32(sa / sb)
	}
}

func remSigned(a, b uint32) uint32 {
	sa, sb := int32(a), int32(b)
	switch {
	case sb == 0:
		return a
	case sa == -1<<31 && sb == -1:
		return 0
	default:
		return uint32(sa % sb)
	}
}
