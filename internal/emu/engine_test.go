package emu_test

import (
	"strings"
	"testing"

	"nacho/internal/emu"
	"nacho/internal/isa"
	"nacho/internal/systems"
)

func TestParseEngine(t *testing.T) {
	valid := map[string]emu.Engine{
		"":     emu.EngineAuto,
		"auto": emu.EngineAuto,
		"ref":  emu.EngineRef,
		"fast": emu.EngineFast,
		"aot":  emu.EngineAOT,
	}
	for s, want := range valid {
		got, err := emu.ParseEngine(s)
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseEngine(%q) = %q, want %q", s, got, want)
		}
	}
	for _, s := range []string{"bogus", "AOT", "reference", "jit"} {
		_, err := emu.ParseEngine(s)
		if err == nil {
			t.Fatalf("ParseEngine(%q) accepted", s)
		}
		if !strings.Contains(err.Error(), s) {
			t.Fatalf("ParseEngine(%q) error %q does not name the bad value", s, err)
		}
		if !strings.Contains(err.Error(), emu.Engines) {
			t.Fatalf("ParseEngine(%q) error %q does not list the valid spellings", s, err)
		}
	}
}

func TestResolveEngine(t *testing.T) {
	cases := []struct {
		name string
		cfg  emu.Config
		want emu.Engine
	}{
		{"auto picks aot", emu.Config{}, emu.EngineAOT},
		{"deprecated no-fastpath forces ref", emu.Config{NoFastPath: true}, emu.EngineRef},
		{"explicit ref", emu.Config{Engine: emu.EngineRef}, emu.EngineRef},
		{"explicit fast", emu.Config{Engine: emu.EngineFast}, emu.EngineFast},
		{"explicit aot", emu.Config{Engine: emu.EngineAOT}, emu.EngineAOT},
		{"explicit engine wins over no-fastpath", emu.Config{Engine: emu.EngineAOT, NoFastPath: true}, emu.EngineAOT},
		{"unknown value degrades to ref", emu.Config{Engine: emu.Engine("bogus")}, emu.EngineRef},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.cfg.ResolveEngine(); got != tc.want {
				t.Fatalf("ResolveEngine() = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestNoDecodeInHotLoop pins the pre-decode contract: isa.Decode runs only at
// DecodeText time, never per executed instruction, on any engine. The program
// retires far more instructions than its static instruction count, so a
// per-step decode would show up as thousands of extra calls.
func TestNoDecodeInHotLoop(t *testing.T) {
	src := `
_start:
	li   a0, 0
	li   a1, 2000
loop:
	addi a0, a0, 1
	lw   t0, 0(sp)
	sw   t0, 0(sp)
	bne  a0, a1, loop
` + epilogue
	for _, engine := range []emu.Engine{emu.EngineRef, emu.EngineFast, emu.EngineAOT} {
		t.Run(string(engine), func(t *testing.T) {
			// run's assemble+DecodeText stage legitimately decodes each text
			// word once; everything after the baseline snapshot inside the
			// machine run must not decode at all. The decode happens inside
			// run(), so bracket the whole call and bound the growth by the
			// static word count rather than demanding zero.
			before := isa.DecodeCalls()
			res, err := run(t, src, systems.KindVolatile, emu.Config{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.Instructions < 8000 {
				t.Fatalf("workload too small to detect per-step decoding: %d instructions", res.Counters.Instructions)
			}
			decodes := isa.DecodeCalls() - before
			if decodes > 64 {
				t.Fatalf("%d isa.Decode calls for a %d-instruction run: hot loop is decoding (image decode alone must stay under the static word count)", decodes, res.Counters.Instructions)
			}
		})
	}
}
