package emu

import (
	"nacho/internal/compile"
	"nacho/internal/isa"
)

// This file implements the static pre-analysis behind the batched fast path.
// The text segment is immutable for the life of a run (there is no
// self-modifying code: stores to the text range would go through the memory
// system, which the loader never maps over text), so everything derivable
// from the instruction words alone is computed once — at DecodeText time —
// and shared by every run of the same image.
//
// Two artifacts come out of the analysis:
//
//   - The basic-block partition (Blocks): leaders at the entry, at every
//     static jump/branch target, and at every fall-through after a
//     terminator; terminators at JAL/JALR/Bcc/EBREAK/ECALL. Each block is
//     annotated with its ALU-only prefix length. The partition is metadata —
//     tests and tooling consume it.
//
//   - The per-index ALU run table (aluRun): for every instruction index, the
//     number of consecutive batchable instructions starting there. This is
//     what the fast path actually indexes, because execution can enter
//     straight-line code at any pc (e.g. resuming after a memory access in
//     the middle of a block), and falling through a block leader is
//     semantically free — leaders only mark where control flow may *enter*,
//     never a side effect.
//
// An instruction is batchable when it is register-only straight-line compute
// (isa.Op.IsALU: no memory, no MMIO, no control flow, exactly one base
// cycle) and its destination register needs no special handling: writes to
// x0 must be discarded and writes to sp run the stack guard and notify the
// memory system's stack tracker, so both stay on the per-instruction
// reference path.

// Block is one basic block of the text segment, in instruction indices
// (multiply by 4 and add the text base for addresses).
type Block struct {
	// Start is the index of the block's leader; Len its instruction count.
	Start, Len int
	// ALUPrefix is the number of leading instructions of the block that are
	// batchable (see batchable); it never exceeds Len.
	ALUPrefix int
}

// Text is a decoded text segment plus the static analysis the batched
// execution engine consumes. Build one with DecodeText (from assembled
// bytes) or NewText (from in-memory instructions); the zero value is an
// empty segment.
type Text struct {
	// Instrs is the decoded instruction sequence, one entry per word.
	Instrs []isa.Instr
	// Blocks is the basic-block partition in ascending Start order.
	Blocks []Block

	// aluRun[i] is the number of consecutive batchable instructions starting
	// at index i (0 when instruction i itself is not batchable). Runs may
	// cross fall-through block boundaries: entering the next block without a
	// control transfer is exactly sequential execution.
	aluRun []uint32

	// prog is the AOT-compiled threaded-code IR (internal/compile), built
	// once here so every run of the image shares it. The IR is immutable
	// after compilation.
	prog *compile.Program
}

// NewText analyzes an instruction sequence into a Text. The slice is
// retained, not copied; callers must not mutate it afterwards.
func NewText(instrs []isa.Instr) *Text {
	t := &Text{Instrs: instrs}
	t.analyze()
	t.prog = compile.Compile(instrs)
	return t
}

// Compiled exposes the AOT IR program (tests and tooling).
func (t *Text) Compiled() *compile.Program { return t.prog }

// Len returns the number of instructions in the segment.
func (t *Text) Len() int { return len(t.Instrs) }

// batchable reports whether the instruction may execute inside the batched
// ALU loop (see the file comment for why x0 and sp destinations are
// excluded).
func batchable(in *isa.Instr) bool {
	return in.Op.IsALU() && in.Rd != isa.Zero && in.Rd != isa.SP
}

// terminator reports whether the instruction ends a basic block.
func terminator(op isa.Op) bool { return op.IsControl() }

func (t *Text) analyze() {
	n := len(t.Instrs)
	if n == 0 {
		return
	}

	// Pass 1: leaders. Index 0 is a leader; so are static branch/jump
	// targets and the instruction after every terminator. JALR targets are
	// dynamic and unknowable here — harmless, since the ALU run table (not
	// the block partition) is what execution consults, and it is valid from
	// any entry index.
	leader := make([]bool, n)
	leader[0] = true
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if in.Op == isa.JAL || in.Op.IsBranch() {
			if in.Imm%4 == 0 {
				if tgt := int64(i) + int64(in.Imm)/4; tgt >= 0 && tgt < int64(n) {
					leader[tgt] = true
				}
			}
		}
		if terminator(in.Op) && i+1 < n {
			leader[i+1] = true
		}
	}

	// Pass 2: ALU run lengths, computed right to left so each index is O(1).
	t.aluRun = make([]uint32, n)
	for i := n - 1; i >= 0; i-- {
		if batchable(&t.Instrs[i]) {
			t.aluRun[i] = 1
			if i+1 < n {
				t.aluRun[i] += t.aluRun[i+1]
			}
		}
	}

	// Pass 3: assemble blocks and annotate ALU prefixes.
	start := 0
	flush := func(end int) {
		b := Block{Start: start, Len: end - start}
		for j := start; j < end && batchable(&t.Instrs[j]); j++ {
			b.ALUPrefix++
		}
		t.Blocks = append(t.Blocks, b)
		start = end
	}
	for i := 0; i < n; i++ {
		if i > start && leader[i] {
			flush(i)
		}
		if terminator(t.Instrs[i].Op) {
			flush(i + 1)
		}
	}
	if start < n {
		flush(n)
	}
}
