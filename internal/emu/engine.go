package emu

import "fmt"

// Engine selects the execution engine for a run. All engines are required to
// produce byte-identical results, error strings, cycle counts, and final
// state — the engine-equivalence suite in internal/harness enforces it — so
// the selector is a performance and debugging knob, never a semantics knob.
// Probed runs always execute on the reference interpreter regardless of the
// selection: it is the sole emitter of per-instruction events.
type Engine string

const (
	// EngineAuto (the zero value) picks the fastest correct engine for the
	// run: the AOT engine, unless a probe or the deprecated NoFastPath flag
	// forces the reference interpreter.
	EngineAuto Engine = ""
	// EngineRef is the per-instruction reference interpreter: the behavioral
	// specification, the differential oracle, and the only engine that emits
	// per-instruction probe events.
	EngineRef Engine = "ref"
	// EngineFast is the batched ALU fast path (PR 5): the reference step for
	// everything except safe-horizon ALU runs.
	EngineFast Engine = "fast"
	// EngineAOT executes the ahead-of-time compiled threaded-code IR
	// (internal/compile): pre-decoded operands, pre-resolved branch targets,
	// fused superinstructions, and direct-port memory access, with batched
	// ALU runs under the same safe-horizon logic as EngineFast.
	EngineAOT Engine = "aot"
)

// Engines lists the accepted -engine spellings, for CLI help strings.
const Engines = "auto, ref, fast, aot"

// ParseEngine validates an engine name from a CLI flag or config field. The
// empty string and "auto" both select EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "ref":
		return EngineRef, nil
	case "fast":
		return EngineFast, nil
	case "aot":
		return EngineAOT, nil
	}
	return EngineAuto, fmt.Errorf("emu: unknown engine %q (valid: %s)", s, Engines)
}

// ResolveEngine returns the concrete engine the config selects, with
// EngineAuto and the deprecated NoFastPath alias resolved. The harness keys
// its run cache on the resolved value.
func (cfg Config) ResolveEngine() Engine { return cfg.effectiveEngine() }

// effectiveEngine resolves EngineAuto and the deprecated NoFastPath alias to
// a concrete engine. An unrecognized Engine value degrades to the reference
// interpreter — always correct — rather than guessing; config layers that
// accept user input validate with ParseEngine first and report the error.
func (cfg *Config) effectiveEngine() Engine {
	switch cfg.Engine {
	case EngineAuto:
		if cfg.NoFastPath {
			return EngineRef
		}
		return EngineAOT
	case EngineFast, EngineAOT:
		return cfg.Engine
	default:
		return EngineRef
	}
}
