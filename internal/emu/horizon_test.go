package emu

// White-box tests for the fast-path horizon arithmetic and the saturating
// forced-checkpoint bookkeeping: the regression suite for the unsigned
// underflow/overflow family (NoFailure-adjacent cycles, margin exceeding
// nextForced) that the pre-fix expressions `nextForced - margin - cycle` and
// `cycle + margin` wrapped on.

import (
	"testing"

	"nacho/internal/isa"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/systems"
)

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{power.NoFailure - 1, 1, power.NoFailure},
		{power.NoFailure - 1, 2, power.NoFailure},
		{power.NoFailure, 1, power.NoFailure},
		{power.NoFailure, power.NoFailure, power.NoFailure},
		{1 << 63, 1 << 63, power.NoFailure},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Errorf("satAdd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestBatchHorizonTable pins the horizon computation, most importantly the
// overflow family: each "pre-fix" comment states what the unguarded
// arithmetic used to produce.
func TestBatchHorizonTable(t *testing.T) {
	const inf = power.NoFailure
	base := horizonInputs{
		run:         100,
		failEnabled: true,
		nextFailure: inf,
		maxInstr:    1 << 40,
	}
	cases := []struct {
		name string
		mod  func(*horizonInputs)
		want uint64
	}{
		{"unbounded", func(in *horizonInputs) {}, 100},
		{"failure-bound", func(in *horizonInputs) { in.cycle = 10; in.nextFailure = 50 }, 39},
		{"failure-now", func(in *horizonInputs) { in.cycle = 50; in.nextFailure = 50 }, 0},
		{"failure-next-cycle", func(in *horizonInputs) { in.cycle = 49; in.nextFailure = 50 }, 0},
		{"failure-deferred", func(in *horizonInputs) { in.failEnabled = false; in.cycle = 60; in.nextFailure = 50 }, 100},
		{"cycle-budget-bound", func(in *horizonInputs) { in.cycle = 90; in.maxCycles = 120 }, 30},
		{"instruction-bound", func(in *horizonInputs) { in.instructions = in.maxInstr - 7 }, 7},
		{"forced-bound", func(in *horizonInputs) {
			in.run = 1000
			in.period = 1000
			in.margin = 100
			in.nextForced = 1000
			in.cycle = 500
		}, 400},
		// Pre-fix: nextForced-margin-cycle = 50-100-0 wrapped to ~2^64,
		// so the batch ran straight past the forced-checkpoint trigger.
		{"margin-exceeds-nextForced", func(in *horizonInputs) {
			in.period = 10
			in.margin = 100
			in.nextForced = 50
		}, 0},
		// Pre-fix: (inf-5)-(4096)-(inf-10) underflowed to a huge horizon.
		{"nofailure-adjacent-forced", func(in *horizonInputs) {
			in.cycle = inf - 10
			in.period = 100
			in.margin = 4096
			in.nextForced = inf - 5
		}, 0},
		// A saturated nextForced disables the forced bound entirely (the
		// trigger in both run loops skips it the same way).
		{"forced-saturated", func(in *horizonInputs) {
			in.cycle = inf - 200
			in.period = 100
			in.margin = 10
			in.nextForced = inf
			in.nextFailure = inf
			in.failEnabled = false
		}, 100},
		{"stopAt-bound", func(in *horizonInputs) { in.cycle = 10; in.stopAt = 25 }, 15},
		{"stopAt-loose", func(in *horizonInputs) { in.stopAt = 1 << 30 }, 100},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := base
			c.mod(&in)
			if got := batchHorizon(in); got != c.want {
				t.Errorf("batchHorizon(%+v) = %d, want %d", in, got, c.want)
			}
		})
	}
}

// horizonTestMachine builds a machine over the given kind running count ADDI
// instructions followed by EBREAK.
func horizonTestMachine(t *testing.T, kind systems.Kind, count int, cfg Config) *Machine {
	t.Helper()
	const (
		textBase = 0x0001_0000
		stackTop = 0x000A_0000
		ckptBase = 0x000E_0000
	)
	instrs := make([]isa.Instr, 0, count+1)
	for i := 0; i < count; i++ {
		instrs = append(instrs, isa.Instr{Op: isa.ADDI, Rd: isa.Reg(5), Rs1: isa.Reg(5), Imm: 1})
	}
	instrs = append(instrs, isa.Instr{Op: isa.EBREAK})
	sys, err := systems.Build(kind, mem.NewSpace(), systems.Config{
		CacheSize: 64, Ways: 2, StackTop: stackTop, CheckpointBase: ckptBase,
		Cost: mem.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return New(sys, NewText(instrs), textBase, textBase, stackTop, cfg)
}

// TestForcedCheckpointArithmeticNearOverflow runs both engines with the
// simulation clock parked just below 2^64 and a forced-checkpoint trigger in
// the saturation zone. Pre-fix, the reference path's trigger-advance loop
// (`nextForced += period` until past `cycle+margin`) wrapped and spun
// effectively forever; post-fix both engines saturate nextForced, take the
// checkpoint once, and halt with identical state.
func TestForcedCheckpointArithmeticNearOverflow(t *testing.T) {
	type outcome struct {
		cycles      uint64
		checkpoints uint64
		forced      uint64
		x5          uint32
	}
	run := func(noFast bool) outcome {
		cfg := Config{ForcedCheckpointPeriod: 4000, NoFastPath: noFast}
		m := horizonTestMachine(t, systems.KindClank, 64, cfg)
		// Park the clock near the top of the domain, mid-interval: the next
		// forced checkpoint saturates.
		m.cycle = power.NoFailure - 2000
		m.nextForced = power.NoFailure - 1000
		m.failEnabled = false // Advance's cycle+n must not be asked to wrap
		res, err := m.Run()
		if err != nil {
			t.Fatalf("run (noFast=%v): %v", noFast, err)
		}
		return outcome{
			cycles:      res.Counters.Cycles,
			checkpoints: res.Counters.Checkpoints,
			forced:      res.Counters.ForcedCkpts,
			x5:          res.FinalRegs.Regs[4], // x5
		}
	}
	ref := run(true)
	fast := run(false)
	if ref != fast {
		t.Fatalf("engines diverged near overflow: ref=%+v fast=%+v", ref, fast)
	}
	if ref.forced == 0 {
		t.Fatal("expected the in-zone forced checkpoint to fire")
	}
	if ref.x5 != 64 {
		t.Fatalf("program state corrupted: x5=%d, want 64", ref.x5)
	}
}

// TestRunUntilEngineBoundaryEquivalence checks that RunUntil stops both
// engines at the identical instruction boundary with identical state for a
// sweep of targets — the property the snapshot-fork prefix machine relies on.
func TestRunUntilEngineBoundaryEquivalence(t *testing.T) {
	for target := uint64(0); target <= 70; target += 7 {
		ref := horizonTestMachine(t, systems.KindVolatile, 64, Config{NoFastPath: true})
		fast := horizonTestMachine(t, systems.KindVolatile, 64, Config{})
		rh, rerr := ref.RunUntil(target)
		fh, ferr := fast.RunUntil(target)
		if rerr != nil || ferr != nil {
			t.Fatalf("target %d: errors ref=%v fast=%v", target, rerr, ferr)
		}
		if rh != fh || ref.cycle != fast.cycle || ref.pc != fast.pc || ref.regs != fast.regs {
			t.Fatalf("target %d: boundary diverged: ref(halted=%v cycle=%d pc=%#x) fast(halted=%v cycle=%d pc=%#x)",
				target, rh, ref.cycle, ref.pc, fh, fast.cycle, fast.pc)
		}
		if !rh && ref.cycle < target {
			t.Fatalf("target %d: stopped early at %d without halting", target, ref.cycle)
		}
		// Resuming after a bounded run must finish exactly like an unbounded one.
		if _, err := ref.Run(); err != nil {
			t.Fatalf("resume ref: %v", err)
		}
		if _, err := fast.Run(); err != nil {
			t.Fatalf("resume fast: %v", err)
		}
		if ref.cycle != fast.cycle || ref.regs != fast.regs {
			t.Fatalf("target %d: post-resume state diverged", target)
		}
	}
}
