package emu_test

import (
	"strings"
	"testing"

	"nacho/internal/asm"
	"nacho/internal/emu"
	"nacho/internal/mem"
	"nacho/internal/power"
	"nacho/internal/systems"
)

const (
	textBase = 0x0001_0000
	dataBase = 0x0002_0000
	stackTop = 0x000A_0000
	ckptBase = 0x000E_0000
)

// run assembles src and executes it on the given system kind.
func run(t *testing.T, src string, kind systems.Kind, cfg emu.Config) (emu.Result, error) {
	t.Helper()
	prog, err := asm.Assemble(src, asm.Options{TextBase: textBase, DataBase: dataBase})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	space := mem.NewSpace()
	var text []byte
	for _, seg := range prog.Segments {
		space.LoadBytes(seg.Addr, seg.Data)
		if seg.Addr == textBase {
			text = seg.Data
		}
	}
	decoded, err := emu.DecodeText(text)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sys, err := systems.Build(kind, space, systems.Config{
		CacheSize: 64, Ways: 2, StackTop: stackTop, CheckpointBase: ckptBase,
		Cost: mem.DefaultCostModel(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := emu.New(sys, decoded, textBase, prog.Entry, stackTop, cfg)
	return m.Run()
}

func mustRun(t *testing.T, src string) emu.Result {
	t.Helper()
	res, err := run(t, src, systems.KindVolatile, emu.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// report stores a0 to RESULT; fin halts.
const epilogue = `
	li   t0, 0x000F0004
	sw   a0, (t0)
	li   t0, 0x000F0000
	sw   zero, (t0)
`

func TestALUSemantics(t *testing.T) {
	// Each case stores one RESULT word; all are checked in order.
	src := `
_start:
	# signed division edge cases
	li   a1, -2147483648
	li   a2, -1
	div  a0, a1, a2            # overflow -> MinInt
` + epilogueKeep + `
	li   a2, 0
	div  a0, a1, a2            # div by zero -> -1
` + epilogueKeep + `
	rem  a0, a1, a2            # rem by zero -> dividend
` + epilogueKeep + `
	li   a1, -2147483648
	li   a2, -1
	rem  a0, a1, a2            # overflow rem -> 0
` + epilogueKeep + `
	li   a1, 7
	li   a2, -3
	div  a0, a1, a2            # trunc toward zero -> -2
` + epilogueKeep + `
	rem  a0, a1, a2            # sign follows dividend -> 1
` + epilogueKeep + `
	li   a1, -5
	li   a2, 3
	mulh a0, a1, a2            # high bits of -15 -> -1
` + epilogueKeep + `
	li   a1, 0x80000000
	li   a2, 2
	mulhu a0, a1, a2           # 0x100000000 >> 32 -> 1
` + epilogueKeep + `
	li   a1, -1
	li   a2, 2
	mulhsu a0, a1, a2          # (-1)*2 = -2 -> high = -1
` + epilogueKeep + `
	li   a1, -8
	srai a0, a1, 1             # arithmetic -> -4
` + epilogueKeep + `
	srli a0, a1, 28            # logical -> 0xF
` + epilogueKeep + `
	li   a1, -1
	li   a2, 1
	slt  a0, a1, a2            # signed: -1 < 1 -> 1
` + epilogueKeep + `
	sltu a0, a1, a2            # unsigned: max < 1 -> 0
` + epilogueKeep + `
	li   a1, 3
	li   a2, 35
	sll  a0, a1, a2            # shift amount mod 32 -> 24
` + epilogueKeep + `
	li   t0, 0x000F0000
	sw   zero, (t0)
`
	res := mustRun(t, src)
	want := []uint32{
		0x80000000, // div overflow
		0xFFFFFFFF, // div by zero
		0x80000000, // rem by zero -> dividend
		0,          // rem overflow
		0xFFFFFFFE,
		1,
		0xFFFFFFFF, // mulh
		1,          // mulhu
		0xFFFFFFFF, // mulhsu
		0xFFFFFFFC,
		0xF,
		1,
		0,
		24,
	}
	if len(res.Results) != len(want) {
		t.Fatalf("got %d results, want %d: %v", len(res.Results), len(want), res.Results)
	}
	for i, w := range want {
		if res.Results[i] != w {
			t.Errorf("case %d = %#x, want %#x", i, res.Results[i], w)
		}
	}
}

const epilogueKeep = `
	li   t0, 0x000F0004
	sw   a0, (t0)
`

func TestLoadSignExtension(t *testing.T) {
	src := `
	.data
val:	.word 0x80FF7F80
	.text
_start:
	la   a3, val
	lb   a0, 0(a3)             # 0x80 -> -128
` + epilogueKeep + `
	lbu  a0, 0(a3)             # 0x80 -> 128
` + epilogueKeep + `
	lh   a0, 0(a3)             # 0x7F80 -> positive
` + epilogueKeep + `
	lh   a0, 2(a3)             # 0x80FF -> negative
` + epilogueKeep + `
	lhu  a0, 2(a3)             # 0x80FF
` + epilogueKeep + `
	li   t0, 0x000F0000
	sw   zero, (t0)
`
	res := mustRun(t, src)
	want := []uint32{0xFFFFFF80, 128, 0x7F80, 0xFFFF80FF, 0x80FF}
	for i, w := range want {
		if res.Results[i] != w {
			t.Errorf("case %d = %#x, want %#x", i, res.Results[i], w)
		}
	}
}

func TestSubWordStores(t *testing.T) {
	src := `
	.data
val:	.word 0xAABBCCDD
	.text
_start:
	la   a3, val
	li   a1, 0x11
	sb   a1, 1(a3)
	li   a1, 0x2233
	sh   a1, 2(a3)
	lw   a0, 0(a3)
` + epilogue
	res := mustRun(t, src)
	if res.Result != 0x223311DD {
		t.Errorf("result = %#x, want 0x223311DD", res.Result)
	}
}

func TestBranchLoop(t *testing.T) {
	src := `
_start:
	li   a0, 0
	li   a1, 1
loop:
	add  a0, a0, a1
	addi a1, a1, 1
	li   t1, 101
	bne  a1, t1, loop
` + epilogue
	res := mustRun(t, src)
	if res.Result != 5050 {
		t.Errorf("sum = %d, want 5050", res.Result)
	}
}

func TestCallReturnAndStack(t *testing.T) {
	src := `
_start:
	li   a0, 5
	call fact
` + epilogue + `
# fact(n): recursive factorial
fact:
	li   t0, 2
	bge  a0, t0, recurse
	li   a0, 1
	ret
recurse:
	addi sp, sp, -8
	sw   ra, 4(sp)
	sw   a0, 0(sp)
	addi a0, a0, -1
	call fact
	lw   t1, 0(sp)
	mul  a0, a0, t1
	lw   ra, 4(sp)
	addi sp, sp, 8
	ret
`
	res := mustRun(t, src)
	if res.Result != 120 {
		t.Errorf("fact(5) = %d, want 120", res.Result)
	}
}

func TestMisalignedAccessErrors(t *testing.T) {
	_, err := run(t, "_start:\n li a1, 0x20002\n lw a0, 1(a1)\n ebreak\n", systems.KindVolatile, emu.Config{})
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned load error = %v", err)
	}
	_, err = run(t, "_start:\n li a1, 0x20001\n sh a0, (a1)\n ebreak\n", systems.KindVolatile, emu.Config{})
	if err == nil || !strings.Contains(err.Error(), "misaligned") {
		t.Errorf("misaligned store error = %v", err)
	}
}

func TestPCOutOfTextErrors(t *testing.T) {
	_, err := run(t, "_start:\n li t1, 0x50000\n jr t1\n", systems.KindVolatile, emu.Config{})
	if err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("wild jump error = %v", err)
	}
}

func TestEcallUnsupported(t *testing.T) {
	_, err := run(t, "_start:\n ecall\n", systems.KindVolatile, emu.Config{})
	if err == nil || !strings.Contains(err.Error(), "ecall") {
		t.Errorf("ecall error = %v", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	_, err := run(t, "_start:\n j _start\n", systems.KindVolatile, emu.Config{MaxInstructions: 1000})
	if err == nil || !strings.Contains(err.Error(), "instruction limit") {
		t.Errorf("limit error = %v", err)
	}
}

func TestEbreakHaltsCleanly(t *testing.T) {
	res := mustRun(t, "_start:\n li a0, 3\n ebreak\n")
	if res.ExitCode != 0 {
		t.Errorf("exit code %d", res.ExitCode)
	}
}

func TestExitCode(t *testing.T) {
	res := mustRun(t, "_start:\n li t0, 0x000F0000\n li t1, 42\n sw t1, (t0)\n")
	if res.ExitCode != 42 {
		t.Errorf("exit code = %d, want 42", res.ExitCode)
	}
}

func TestPutchar(t *testing.T) {
	src := `
_start:
	li   t0, 0x000F0008
	li   t1, 'h'
	sw   t1, (t0)
	li   t1, 'i'
	sw   t1, (t0)
	li   t0, 0x000F0000
	sw   zero, (t0)
`
	res := mustRun(t, src)
	if string(res.Output) != "hi" {
		t.Errorf("output = %q, want \"hi\"", res.Output)
	}
}

func TestVolatileCycleAccounting(t *testing.T) {
	// 4 plain instructions (4 cycles) + lw (1 + 2) + sw-to-MMIO exit (1 + 1).
	src := "_start:\n nop\n nop\n nop\n li a1, 0x20000\n lw a0, (a1)\n li t0, 0x000F0000\n sw zero, (t0)\n"
	res := mustRun(t, src)
	// li a1 is 1 word (fits 12 bits? 0x20000 needs lui+addi = 2 instrs).
	// Count instructions precisely instead of hand-counting.
	wantCycles := res.Counters.Instructions + 2 /*lw*/ + 1 /*mmio*/
	if res.Counters.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d (instr=%d)", res.Counters.Cycles, wantCycles, res.Counters.Instructions)
	}
}

func TestPowerFailureAndRecovery(t *testing.T) {
	// A long loop accumulating into NVM memory; periodic failures with
	// forced checkpoints must still produce the correct sum.
	src := `
	.data
acc:	.word 0
	.text
_start:
	la   a3, acc
	li   a1, 1
loop:
	lw   a0, (a3)
	add  a0, a0, a1
	sw   a0, (a3)
	addi a1, a1, 1
	li   t1, 1001
	bne  a1, t1, loop
	lw   a0, (a3)
` + epilogue
	res, err := run(t, src, systems.KindNACHO, emu.Config{
		Schedule:               power.Periodic{Period: 2000},
		ForcedCheckpointPeriod: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != 500500 {
		t.Errorf("sum = %d, want 500500", res.Result)
	}
	if res.Counters.PowerFailures == 0 {
		t.Error("no power failures occurred")
	}
	if res.Counters.ForcedCkpts == 0 {
		t.Error("no forced checkpoints created")
	}
	if res.Counters.RestoreCycles == 0 {
		t.Error("restore cycles not accounted")
	}
}

func TestColdBootWithoutCheckpointRestartsAtEntry(t *testing.T) {
	// The volatile system has no checkpoints: after a failure, Restore
	// reports none and the machine restarts from the entry point. With one
	// failure the program still completes (it re-runs from scratch).
	src := "_start:\n li a0, 9\n" + epilogue
	sched := power.NewUniform(3, 3, 1) // single early failure window
	res, err := run(t, src, systems.KindVolatile, emu.Config{Schedule: oneShot{sched}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result != 9 {
		t.Errorf("result = %d, want 9", res.Result)
	}
	if res.Counters.PowerFailures != 1 {
		t.Errorf("failures = %d, want 1", res.Counters.PowerFailures)
	}
}

// oneShot fails exactly once, at the wrapped schedule's first instant.
type oneShot struct{ inner power.Schedule }

func (o oneShot) NextFailureAfter(cycle uint64) uint64 {
	first := o.inner.NextFailureAfter(0)
	if cycle < first {
		return first
	}
	return power.NoFailure
}

func (o oneShot) Key() string { return "oneshot(" + o.inner.Key() + ")" }

func (o oneShot) Clone() power.Schedule { return oneShot{o.inner.Clone()} }

func TestStackOverflowDetected(t *testing.T) {
	_, err := run(t, "_start:\n li sp, 0x20000\n nop\n ebreak\n", systems.KindVolatile, emu.Config{})
	if err == nil || !strings.Contains(err.Error(), "stack pointer") {
		t.Errorf("stack fault not detected: %v", err)
	}
}

func TestJALRClearsLowBit(t *testing.T) {
	// jalr must clear bit 0 of the computed target (RISC-V spec).
	src := `
_start:
	la   t1, target
	addi t1, t1, 1             # deliberately misaligned by one
	jalr ra, 0(t1)
	ebreak
target:
	li   a0, 99
` + epilogue
	res := mustRun(t, src)
	if res.Result != 99 {
		t.Errorf("result = %d, want 99", res.Result)
	}
}

func TestX0WritesIgnored(t *testing.T) {
	src := `
_start:
	li   t1, 123
	add  zero, t1, t1          # write to x0 discarded
	mv   a0, zero
` + epilogue
	res := mustRun(t, src)
	if res.Result != 0 {
		t.Errorf("x0 = %d after write, want 0", res.Result)
	}
}

func TestAUIPCIsPCRelative(t *testing.T) {
	src := `
_start:
	auipc a0, 0                # a0 = &_start
` + epilogue
	res := mustRun(t, src)
	if res.Result != textBase {
		t.Errorf("auipc = %#x, want %#x", res.Result, uint32(textBase))
	}
}

func TestFenceIsNop(t *testing.T) {
	res := mustRun(t, "_start:\n li a0, 5\n fence\n"+epilogue)
	if res.Result != 5 {
		t.Errorf("result %d", res.Result)
	}
}

func TestMMIOLoadReturnsZero(t *testing.T) {
	src := `
_start:
	li   t1, 0x000F0004
	lw   a0, (t1)
` + epilogue
	res := mustRun(t, src)
	if res.Result != 0 {
		t.Errorf("mmio load = %d, want 0", res.Result)
	}
}

func TestInstructionMixCounters(t *testing.T) {
	src := `
	.data
v:	.word 3
	.text
_start:
	la   a1, v
	lw   a0, (a1)
	sw   a0, (a1)
	lb   t0, (a1)
	sb   t0, (a1)
` + epilogue
	res := mustRun(t, src)
	if res.Counters.Loads != 2 || res.Counters.Stores != 2 {
		// MMIO stores bypass the memory system but still retire as stores.
		t.Logf("loads=%d stores=%d", res.Counters.Loads, res.Counters.Stores)
	}
	if res.Counters.Loads != 2 {
		t.Errorf("loads = %d, want 2", res.Counters.Loads)
	}
	if res.Counters.Stores != 4 { // 2 data + RESULT + EXIT
		t.Errorf("stores = %d, want 4", res.Counters.Stores)
	}
}
