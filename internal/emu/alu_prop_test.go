package emu_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestALUAgainstSpecOracle is a property test of the executor: for every
// register-register RV32IM operation, programs apply the op to random
// operand pairs loaded from memory, and the reported results must match an
// oracle implemented here directly from the RISC-V specification text.
func TestALUAgainstSpecOracle(t *testing.T) {
	oracle := map[string]func(a, b uint32) uint32{
		"add": func(a, b uint32) uint32 { return a + b },
		"sub": func(a, b uint32) uint32 { return a - b },
		"sll": func(a, b uint32) uint32 { return a << (b & 31) },
		"srl": func(a, b uint32) uint32 { return a >> (b & 31) },
		"sra": func(a, b uint32) uint32 { return uint32(int32(a) >> (b & 31)) },
		"xor": func(a, b uint32) uint32 { return a ^ b },
		"or":  func(a, b uint32) uint32 { return a | b },
		"and": func(a, b uint32) uint32 { return a & b },
		"slt": func(a, b uint32) uint32 {
			if int32(a) < int32(b) {
				return 1
			}
			return 0
		},
		"sltu": func(a, b uint32) uint32 {
			if a < b {
				return 1
			}
			return 0
		},
		"mul": func(a, b uint32) uint32 { return a * b },
		"mulh": func(a, b uint32) uint32 {
			return uint32(uint64(int64(int32(a))*int64(int32(b))) >> 32)
		},
		"mulhsu": func(a, b uint32) uint32 {
			return uint32(uint64(int64(int32(a))*int64(b)) >> 32)
		},
		"mulhu": func(a, b uint32) uint32 {
			return uint32(uint64(a) * uint64(b) >> 32)
		},
		"div": func(a, b uint32) uint32 {
			switch {
			case b == 0:
				return ^uint32(0)
			case int32(a) == -1<<31 && int32(b) == -1:
				return a
			default:
				return uint32(int32(a) / int32(b))
			}
		},
		"divu": func(a, b uint32) uint32 {
			if b == 0 {
				return ^uint32(0)
			}
			return a / b
		},
		"rem": func(a, b uint32) uint32 {
			switch {
			case b == 0:
				return a
			case int32(a) == -1<<31 && int32(b) == -1:
				return 0
			default:
				return uint32(int32(a) % int32(b))
			}
		},
		"remu": func(a, b uint32) uint32 {
			if b == 0 {
				return a
			}
			return a % b
		},
	}

	// Operand pool: boundary values plus random fill.
	r := rand.New(rand.NewSource(77))
	pairs := [][2]uint32{
		{0, 0}, {0, 1}, {1, 0}, {^uint32(0), ^uint32(0)},
		{0x8000_0000, ^uint32(0)}, {^uint32(0), 0x8000_0000},
		{0x8000_0000, 1}, {1, 32}, {1, 33}, {0x7FFF_FFFF, 2},
	}
	for len(pairs) < 40 {
		pairs = append(pairs, [2]uint32{r.Uint32(), r.Uint32()})
	}

	for mnem, fn := range oracle {
		mnem, fn := mnem, fn
		t.Run(mnem, func(t *testing.T) {
			var src strings.Builder
			src.WriteString("\t.data\nvals:\n")
			for _, p := range pairs {
				fmt.Fprintf(&src, "\t.word 0x%08x, 0x%08x\n", p[0], p[1])
			}
			src.WriteString("\t.text\n_start:\n\tla a3, vals\n")
			for i := range pairs {
				fmt.Fprintf(&src, "\tlw a1, %d(a3)\n\tlw a2, %d(a3)\n", 8*i, 8*i+4)
				fmt.Fprintf(&src, "\t%s a0, a1, a2\n", mnem)
				src.WriteString("\tli t0, 0x000F0004\n\tsw a0, (t0)\n")
			}
			src.WriteString("\tli t0, 0x000F0000\n\tsw zero, (t0)\n")

			res := mustRun(t, src.String())
			if len(res.Results) != len(pairs) {
				t.Fatalf("got %d results, want %d", len(res.Results), len(pairs))
			}
			for i, p := range pairs {
				want := fn(p[0], p[1])
				if res.Results[i] != want {
					t.Errorf("%s(%#x, %#x) = %#x, want %#x", mnem, p[0], p[1], res.Results[i], want)
				}
			}
		})
	}
}

// TestBranchesAgainstOracle checks every conditional branch against a
// comparison oracle over boundary operand pairs.
func TestBranchesAgainstOracle(t *testing.T) {
	oracle := map[string]func(a, b uint32) bool{
		"beq":  func(a, b uint32) bool { return a == b },
		"bne":  func(a, b uint32) bool { return a != b },
		"blt":  func(a, b uint32) bool { return int32(a) < int32(b) },
		"bge":  func(a, b uint32) bool { return int32(a) >= int32(b) },
		"bltu": func(a, b uint32) bool { return a < b },
		"bgeu": func(a, b uint32) bool { return a >= b },
	}
	pairs := [][2]uint32{
		{0, 0}, {1, 2}, {2, 1}, {^uint32(0), 0}, {0, ^uint32(0)},
		{0x8000_0000, 0x7FFF_FFFF}, {0x7FFF_FFFF, 0x8000_0000},
		{5, 5}, {^uint32(0), ^uint32(0)},
	}
	for mnem, fn := range oracle {
		mnem, fn := mnem, fn
		t.Run(mnem, func(t *testing.T) {
			var src strings.Builder
			src.WriteString("_start:\n")
			for i, p := range pairs {
				// a0 = 1 if branch taken else 0, reported per pair.
				fmt.Fprintf(&src, "\tli a1, 0x%08x\n\tli a2, 0x%08x\n\tli a0, 0\n", p[0], p[1])
				fmt.Fprintf(&src, "\t%s a1, a2, taken%d\n\tj done%d\ntaken%d:\n\tli a0, 1\ndone%d:\n", mnem, i, i, i, i)
				src.WriteString("\tli t0, 0x000F0004\n\tsw a0, (t0)\n")
			}
			src.WriteString("\tli t0, 0x000F0000\n\tsw zero, (t0)\n")
			res := mustRun(t, src.String())
			for i, p := range pairs {
				want := uint32(0)
				if fn(p[0], p[1]) {
					want = 1
				}
				if res.Results[i] != want {
					t.Errorf("%s(%#x, %#x) taken=%d, want %d", mnem, p[0], p[1], res.Results[i], want)
				}
			}
		})
	}
}
