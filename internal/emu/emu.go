// Package emu implements the RV32IM processor emulator: the role ICEmu plays
// in the paper (Section 5.1). It executes programs instruction by
// instruction against a pluggable memory system (sim.System), owns the
// simulation clock and the power-failure schedule, reports retired
// instructions, MMIO accesses, power failures, and restores to the attached
// sim.Probe, and runs the reboot/restore path after each power failure.
//
// Cost model (Section 5.2): every instruction retires in one base cycle —
// the in-order single-issue E21-style pipeline — and data accesses add the
// cache/NVM latency charged inside the memory system. Instruction fetch is
// charged identically (zero extra) for every system, so normalized
// comparisons between systems are unaffected.
package emu

import (
	"errors"
	"fmt"

	"nacho/internal/compile"
	"nacho/internal/isa"
	"nacho/internal/mem"
	"nacho/internal/metrics"
	"nacho/internal/power"
	"nacho/internal/sim"
)

// Memory-mapped I/O registers. Stores to these bypass the memory system.
const (
	MMIOBase    = 0x000F_0000
	ExitAddr    = MMIOBase + 0x0 // store: halt; value is the exit status
	ResultAddr  = MMIOBase + 0x4 // store: report a result word (golden check)
	PutcharAddr = MMIOBase + 0x8 // store: append low byte to the output
)

// Config tunes one emulation run.
type Config struct {
	// Schedule injects power failures; power.None{} runs failure-free.
	Schedule power.Schedule
	// ForcedCheckpointPeriod, when non-zero, creates a checkpoint every this
	// many cycles after each boot (the paper's n/2 forward-progress rule).
	ForcedCheckpointPeriod uint64
	// ForcedCheckpointMargin starts each forced checkpoint this many cycles
	// early so it *completes* inside the on-window when the failure schedule
	// is periodic and known (the Table 2 setup): a checkpoint that collides
	// with the failure instant would otherwise never commit and a
	// checkpoint-free workload would lose half of every window. Defaults to
	// 4096 cycles (a generous bound on one checkpoint), clamped to a quarter
	// of the period.
	ForcedCheckpointMargin uint64
	// MaxInstructions aborts runaway programs; 0 means a generous default.
	MaxInstructions uint64
	// MaxCycles is a hard cycle budget for the whole run, restores included;
	// 0 means no budget. Exceeding it aborts with an error wrapping
	// ErrCycleBudget — the crash-consistency fuzzer's non-termination oracle:
	// a run that cannot finish within its budget under a finite failure
	// schedule has lost forward progress.
	MaxCycles uint64
	// FinalFlush, when set, issues one ForceCheckpoint after a clean halt
	// with power failures disabled. It models the final commit a deployment
	// performs when its job completes, and guarantees that every surviving
	// store is visible in NVM — the state the differential oracle compares.
	FinalFlush bool
	// Probe, when non-nil, receives the emulator's own events: instruction
	// retirement, MMIO accesses, power failures, and restores. Attach the
	// same probe to the memory system (sim.System.AttachProbe) to observe
	// the full event stream of a run. Attaching a probe also selects the
	// per-instruction reference interpreter, so the event stream stays
	// event-for-event identical to the historical trace format.
	Probe sim.Probe
	// Engine selects the execution engine (see Engine). All engines produce
	// byte-identical results; EngineAuto (the zero value) picks the fastest.
	// A probe overrides the selection with EngineRef — the reference
	// interpreter is the sole emitter of per-instruction events.
	Engine Engine
	// NoFastPath forces the per-instruction reference interpreter even when
	// no probe is attached.
	//
	// Deprecated: set Engine to EngineRef instead. The flag is kept as an
	// alias for older callers and is consulted only while Engine is
	// EngineAuto.
	NoFastPath bool
	// NoFastPort makes the AOT and batched engines route every data access
	// through the full sim.System interface instead of consulting the
	// system's sim.FastPort hit path. Results are byte-identical either way
	// (the equivalence suite runs both sides of this axis); the knob exists
	// for debugging, for that suite, and for measuring the fast path's gain.
	NoFastPort bool
}

const defaultMaxInstructions = 2_000_000_000

// Result summarizes a completed run.
type Result struct {
	ExitCode uint32
	Result   uint32 // last value stored to ResultAddr
	Results  []uint32
	Output   []byte // bytes stored to PutcharAddr
	Counters metrics.Counters
	// FinalRegs is the architectural register state at the end of the run.
	// Under a correct memory system it is invariant across failure schedules,
	// which makes it one of the differential oracle's comparison axes.
	FinalRegs sim.Snapshot
}

// Machine is one emulated processor wired to a memory system. It implements
// sim.Clock and sim.RegSource for that system.
type Machine struct {
	regs [32]uint32
	pc   uint32

	text      []isa.Instr
	aluRun    []uint32         // batched fast-path run table (see Text)
	prog      *compile.Program // AOT threaded-code IR (see Text)
	engine    Engine           // resolved engine (never EngineAuto)
	textBase  uint32
	entry     uint32
	initialSP uint32

	sys   sim.System
	sched power.Schedule
	probe sim.Probe
	cfg   Config

	// sysLoad/sysStore are sys.Load and sys.Store pre-bound at construction:
	// the AOT engine's generic memory tier calls them without re-resolving
	// the interface method per access.
	sysLoad  func(addr uint32, size int) uint32
	sysStore func(addr uint32, size int, val uint32)

	cycle       uint64
	nextFailure uint64
	failEnabled bool
	nextForced  uint64
	stopAt      uint64 // RunUntil bound; 0 = run to completion

	c metrics.Counters

	halted     bool
	stackFault bool
	exitCode   uint32
	results    []uint32
	output     []byte
}

// satAdd is a+b saturating at power.NoFailure, the cycle domain's infinity.
// Forced-checkpoint and horizon arithmetic near 2^64 must clamp rather than
// wrap: a wrapped small value would schedule bogus early events (or spin the
// trigger-advance loops forever).
func satAdd(a, b uint64) uint64 {
	if s := a + b; s >= a {
		return s
	}
	return power.NoFailure
}

// errPowerFail converts the PowerFail panic into control flow inside Run.
var errPowerFail = errors.New("power failure")

// ErrCycleBudget reports that a run exceeded Config.MaxCycles. Callers that
// inject failure schedules match it with errors.Is to distinguish a
// forward-progress loss from ordinary program errors.
var ErrCycleBudget = errors.New("cycle budget exceeded")

// New creates a machine executing the pre-analyzed text segment at textBase,
// starting at entry with the stack pointer at initialSP. The system is
// attached (clock, registers, counters) and its boot checkpoint initialized.
func New(sys sim.System, text *Text, textBase, entry, initialSP uint32, cfg Config) *Machine {
	if text == nil {
		text = &Text{}
	}
	if cfg.Schedule == nil {
		cfg.Schedule = power.None{}
	}
	// Confine schedule state to this machine: stateful schedules (Uniform)
	// advance an RNG as they are queried, so sharing one value across
	// machines would make failure instants depend on run order.
	cfg.Schedule = cfg.Schedule.Clone()
	if cfg.MaxInstructions == 0 {
		cfg.MaxInstructions = defaultMaxInstructions
	}
	if cfg.ForcedCheckpointPeriod > 0 {
		if cfg.ForcedCheckpointMargin == 0 {
			cfg.ForcedCheckpointMargin = 4096
		}
		if max := cfg.ForcedCheckpointPeriod / 4; cfg.ForcedCheckpointMargin > max {
			cfg.ForcedCheckpointMargin = max
		}
	}
	m := &Machine{
		text:      text.Instrs,
		aluRun:    text.aluRun,
		prog:      text.prog,
		engine:    cfg.effectiveEngine(),
		textBase:  textBase,
		entry:     entry,
		initialSP: initialSP,
		sys:       sys,
		sched:     cfg.Schedule,
		probe:     cfg.Probe,
		cfg:       cfg,
		sysLoad:   sys.Load,
		sysStore:  sys.Store,
	}
	m.resetToEntry()
	m.failEnabled = true
	m.nextFailure = m.sched.NextFailureAfter(0)
	m.nextForced = cfg.ForcedCheckpointPeriod
	sys.Attach(m, m, &m.c)
	return m
}

// DecodeText decodes an assembled text segment into instructions and runs
// the batched-execution pre-analysis (basic blocks and ALU run lengths) on
// them, so the cost is paid once per image rather than once per run.
func DecodeText(data []byte) (*Text, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("emu: text size %d is not word-aligned", len(data))
	}
	out := make([]isa.Instr, len(data)/4)
	for i := range out {
		w := uint32(data[4*i]) | uint32(data[4*i+1])<<8 | uint32(data[4*i+2])<<16 | uint32(data[4*i+3])<<24
		in, err := isa.Decode(w)
		if err != nil {
			return nil, fmt.Errorf("emu: text word %d: %w", i, err)
		}
		out[i] = in
	}
	return NewText(out), nil
}

// Now implements sim.Clock.
func (m *Machine) Now() uint64 { return m.cycle }

// Advance implements sim.Clock: it charges cycles and raises PowerFail at
// the scheduled failure instant.
func (m *Machine) Advance(n uint64) {
	target := m.cycle + n
	if m.failEnabled && m.nextFailure <= target {
		m.cycle = m.nextFailure
		panic(sim.PowerFail{})
	}
	m.cycle = target
}

// DeferFailures implements sim.EnergyReserve: power failures are held back
// until the returned release runs; a failure whose instant passes inside the
// window fires at release (the reserve is exhausted).
func (m *Machine) DeferFailures() func() {
	if !m.failEnabled {
		return func() {}
	}
	m.failEnabled = false
	return func() {
		m.failEnabled = true
		if m.nextFailure <= m.cycle {
			panic(sim.PowerFail{})
		}
	}
}

// RegSnapshot implements sim.RegSource: the live registers plus the PC of
// the in-flight instruction — exactly the state to resume from, since
// register write-back happens after all memory effects.
func (m *Machine) RegSnapshot() sim.Snapshot {
	var s sim.Snapshot
	copy(s.Regs[:], m.regs[1:])
	s.PC = m.pc
	return s
}

func (m *Machine) resetToEntry() {
	m.regs = [32]uint32{}
	m.regs[isa.SP] = m.initialSP
	m.pc = m.entry
	m.sys.NotifySP(m.initialSP)
}

func (m *Machine) applySnapshot(s sim.Snapshot) {
	m.regs[0] = 0
	copy(m.regs[1:], s.Regs[:])
	m.pc = s.PC
	m.sys.NotifySP(m.regs[isa.SP])
}

// Run executes until the program halts (a store to ExitAddr or an EBREAK),
// handling power failures along the way.
func (m *Machine) Run() (Result, error) {
	var runErr error
	for !m.halted && runErr == nil {
		err := m.runSlice()
		switch {
		case err == nil:
			// halted
		case errors.Is(err, errPowerFail):
			m.reboot()
		default:
			runErr = err
		}
	}
	if m.halted && runErr == nil && m.cfg.FinalFlush {
		// The job is done: persist whatever is still dirty. The device only
		// runs this final commit when it has the energy for it, so failures
		// are held back (the same assumption the restore path makes).
		m.failEnabled = false
		m.sys.ForceCheckpoint()
	}
	res := Result{
		ExitCode:  m.exitCode,
		Results:   m.results,
		Output:    m.output,
		Counters:  m.c,
		FinalRegs: m.RegSnapshot(),
	}
	if len(m.results) > 0 {
		res.Result = m.results[len(m.results)-1]
	}
	res.Counters.Cycles = m.cycle
	return res, runErr
}

// RunUntil executes until the program halts or the simulation clock reaches
// target, whichever comes first, handling power failures along the way. It
// stops at the first instruction boundary at or past target, leaving the
// machine mid-run and resumable (by RunUntil, Run, or Fork); no final flush
// is performed. The snapshot-fork explorer uses it to advance a shared
// prefix machine from one checkpoint boundary to the next.
func (m *Machine) RunUntil(target uint64) (halted bool, err error) {
	m.stopAt = target
	defer func() { m.stopAt = 0 }()
	for !m.halted && err == nil && m.cycle < target {
		e := m.runSlice()
		switch {
		case e == nil:
			// halted or reached target
		case errors.Is(e, errPowerFail):
			m.reboot()
		default:
			err = e
		}
	}
	return m.halted, err
}

// Fork returns an independent copy of the machine mid-run, executing under
// the given failure schedule from the current instruction boundary onward:
// registers, counters, and run outputs are copied, the memory system is
// replicated via sim.Forkable (copy-on-write NVM, deep-copied volatile
// state), and the fork's next failure instant is sched.NextFailureAfter(now)
// — so a fork of a failure-free prefix at cycle c under power.At(t), t > c,
// is state-identical to a from-boot run under the same schedule at cycle c.
// Forks are probe-free (they run on the batched fast path) and safe to run
// on another goroutine. The parent must be paused (between RunUntil calls).
func (m *Machine) Fork(sched power.Schedule) (*Machine, error) {
	fsys, ok := m.sys.(sim.Forkable)
	if !ok {
		return nil, fmt.Errorf("emu: system %q does not support forking", m.sys.Name())
	}
	if sched == nil {
		sched = power.None{}
	}
	f := new(Machine)
	*f = *m
	f.sched = sched.Clone()
	f.cfg.Schedule = f.sched
	f.probe = nil
	f.cfg.Probe = nil
	f.stopAt = 0
	f.results = append([]uint32(nil), m.results...)
	f.output = append([]byte(nil), m.output...)
	f.sys = fsys.Fork(f, f, &f.c)
	// Rebind the pre-bound memory funcs to the forked system: the copied
	// closures still point at the parent's.
	f.sysLoad = f.sys.Load
	f.sysStore = f.sys.Store
	f.nextFailure = f.sched.NextFailureAfter(f.cycle)
	return f, nil
}

// System returns the attached memory system (final-NVM inspection of forks).
func (m *Machine) System() sim.System { return m.sys }

// Halted reports whether the program has halted.
func (m *Machine) Halted() bool { return m.halted }

// runSlice executes instructions until halt or the next power failure. The
// engine is selected once per slice: a probed run always takes the
// per-instruction reference path (the sole emitter of per-instruction
// events); otherwise the resolved Config.Engine picks the AOT IR
// interpreter, the batched ALU fast path, or the reference loop. Every
// engine produces byte-identical results.
func (m *Machine) runSlice() (err error) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(sim.PowerFail); ok {
				err = errPowerFail
				return
			}
			panic(r)
		}
	}()
	if m.probe != nil {
		return m.runSliceRef()
	}
	switch m.engine {
	case EngineAOT:
		return m.runSliceAOT()
	case EngineFast:
		if m.aluRun != nil {
			return m.runSliceFast()
		}
		return m.runSliceRef()
	default:
		return m.runSliceRef()
	}
}

// runSliceRef is the per-instruction reference loop: every instruction pays
// the limit, budget, and forced-checkpoint checks individually. It is the
// behavioral specification the batched fast path is tested against, and the
// only loop that emits per-instruction probe events.
func (m *Machine) runSliceRef() error {
	for !m.halted {
		if m.stopAt != 0 && m.cycle >= m.stopAt {
			return nil
		}
		if m.c.Instructions >= m.cfg.MaxInstructions {
			return fmt.Errorf("emu: instruction limit %d exceeded at pc=0x%08x", m.cfg.MaxInstructions, m.pc)
		}
		if m.cfg.MaxCycles > 0 && m.cycle >= m.cfg.MaxCycles {
			return fmt.Errorf("emu: %w (%d cycles) at pc=0x%08x", ErrCycleBudget, m.cfg.MaxCycles, m.pc)
		}
		if m.cfg.ForcedCheckpointPeriod > 0 && m.nextForced != power.NoFailure &&
			satAdd(m.cycle, m.cfg.ForcedCheckpointMargin) >= m.nextForced {
			m.sys.ForceCheckpoint()
			for m.nextForced != power.NoFailure && m.nextForced <= satAdd(m.cycle, m.cfg.ForcedCheckpointMargin) {
				m.nextForced = satAdd(m.nextForced, m.cfg.ForcedCheckpointPeriod)
			}
		}
		if e := m.step(); e != nil {
			return e
		}
		if m.stackFault {
			return fmt.Errorf("emu: stack pointer 0x%08x left the stack region at pc=0x%08x", m.regs[isa.SP], m.pc)
		}
	}
	return nil
}

// reboot runs the power-failure and restore path. Failures are disabled
// while restoring: the device reboots only once its storage capacitor holds
// enough energy for the restore sequence (the paper's forward-progress
// assumption).
func (m *Machine) reboot() {
	if m.probe != nil {
		m.probe.OnPowerFailure(sim.PowerEvent{Cycle: m.cycle})
	}
	m.c.PowerFailures++
	m.failEnabled = false
	m.sys.PowerFailure()
	start := m.cycle
	snap, ok := m.sys.Restore()
	if ok {
		m.applySnapshot(snap)
	} else {
		m.resetToEntry()
	}
	m.c.RestoreCycles += m.cycle - start
	if m.probe != nil {
		m.probe.OnRestore(sim.RestoreEvent{Cycle: m.cycle, Cycles: m.cycle - start, OK: ok})
	}
	m.failEnabled = true
	m.nextFailure = m.sched.NextFailureAfter(m.cycle)
	if m.cfg.ForcedCheckpointPeriod > 0 {
		m.nextForced = satAdd(m.cycle, m.cfg.ForcedCheckpointPeriod)
	}
}

func (m *Machine) fetch() (isa.Instr, error) {
	off := m.pc - m.textBase
	if m.pc%4 != 0 || off/4 >= uint32(len(m.text)) {
		return isa.Instr{}, fmt.Errorf("emu: pc 0x%08x outside text segment", m.pc)
	}
	return m.text[off/4], nil
}

// stackGuard is how far below the initial stack pointer the stack may grow
// before the emulator reports an overflow (a program bug: the memory map
// reserves this band between .data and the stack).
const stackGuard = 0x8000

func (m *Machine) setReg(r isa.Reg, v uint32) {
	if r == isa.Zero {
		return
	}
	m.regs[r] = v
	if r == isa.SP {
		if v < m.initialSP-stackGuard || v > m.initialSP {
			m.stackFault = true
		}
		m.sys.NotifySP(v)
	}
}

// load issues a data read through the memory system (or MMIO). Cacheable
// accesses are reported by the serving system; only MMIO is emitted here.
func (m *Machine) load(addr uint32, size int) (uint32, error) {
	if err := mem.CheckAligned(addr, size); err != nil {
		return 0, fmt.Errorf("emu: pc 0x%08x: %w", m.pc, err)
	}
	if addr >= MMIOBase && addr < MMIOBase+0x1000 {
		m.Advance(1)
		if m.probe != nil {
			m.probe.OnAccess(sim.AccessEvent{Cycle: m.cycle, Addr: addr, Size: size, Class: sim.AccessMMIO})
		}
		return 0, nil
	}
	return m.sys.Load(addr, size), nil
}

func (m *Machine) store(addr uint32, size int, val uint32) error {
	if err := mem.CheckAligned(addr, size); err != nil {
		return fmt.Errorf("emu: pc 0x%08x: %w", m.pc, err)
	}
	if addr >= MMIOBase && addr < MMIOBase+0x1000 {
		m.Advance(1)
		switch addr {
		case ExitAddr:
			m.halted = true
			m.exitCode = val
		case ResultAddr:
			m.results = append(m.results, val)
		case PutcharAddr:
			m.output = append(m.output, byte(val))
		}
		if m.probe != nil {
			m.probe.OnAccess(sim.AccessEvent{Cycle: m.cycle, Addr: addr, Size: size, Value: val, Store: true, Class: sim.AccessMMIO})
		}
		return nil
	}
	switch size {
	case 1:
		val &= 0xFF
	case 2:
		val &= 0xFFFF
	}
	m.sys.Store(addr, size, val)
	return nil
}
