package emu

import (
	"fmt"

	"nacho/internal/isa"
	"nacho/internal/power"
	"nacho/internal/sim"
)

// This file is the batched fast path: the probe-free specialization of the
// execution loop. Instead of paying five per-instruction overheads
// (instruction-limit check, cycle-budget check, forced-checkpoint check,
// probe nil check, and a failure-aware Advance(1)) for every retired
// instruction, it computes a safe horizon — the number of upcoming cycles in
// which none of those events can possibly fire — and executes the
// pre-analyzed ALU run below that horizon in a tight loop, charging cycles
// and the instruction count once per batch.
//
// Correctness rests on the determinism of the cost model: a batchable
// instruction (Text.aluRun) touches neither memory nor MMIO nor control
// flow, costs exactly one cycle, and writes exactly one register (never x0
// or sp). Within the horizon the simulation is therefore a pure function of
// the register file, and batching cannot change any observable: cycle
// counts, counters, failure instants, checkpoint instants, and final state
// are byte-identical to the per-instruction reference path. The equivalence
// suite (internal/harness TestEngineEquivalence*) enforces this rather than
// trusting the argument.
//
// The fast path is selected once per slice and only when no probe is
// attached (Config.Probe == nil) and Config.NoFastPath is unset; probed and
// traced runs take the reference path, so their event streams stay
// event-for-event identical to the historical format.

// runSliceFast executes instructions until halt or the next power failure,
// batching ALU runs below the safe horizon and falling back to the
// per-instruction step for everything else. Loop-invariant configuration is
// hoisted into locals; the loop's per-iteration checks mirror runSliceRef
// exactly.
func (m *Machine) runSliceFast() error {
	var (
		maxInstr  = m.cfg.MaxInstructions
		maxCycles = m.cfg.MaxCycles
		period    = m.cfg.ForcedCheckpointPeriod
		margin    = m.cfg.ForcedCheckpointMargin
		text      = m.text
		aluRun    = m.aluRun
		textBase  = m.textBase
	)
	// The cached-system fast port (see internal/sim): plain hits on the
	// system's data cache execute in portStep without a sim.System call.
	// Re-acquired each slice — forks bind to the forked system, and probed
	// runs never reach this loop.
	var (
		fLoad   func(addr uint32, size int) (uint32, bool)
		fStore  func(addr uint32, size int, val uint32) bool
		fHitCyc uint64
	)
	if !m.cfg.NoFastPort {
		if fm, ok := m.sys.(sim.FastMemory); ok {
			if p, pok := fm.FastPort(); pok {
				fLoad, fStore, fHitCyc = p.LoadHit, p.StoreHit, p.HitCycles
			}
		}
	}
	for !m.halted {
		if m.stopAt != 0 && m.cycle >= m.stopAt {
			return nil
		}
		if m.c.Instructions >= maxInstr {
			return fmt.Errorf("emu: instruction limit %d exceeded at pc=0x%08x", maxInstr, m.pc)
		}
		if maxCycles > 0 && m.cycle >= maxCycles {
			return fmt.Errorf("emu: %w (%d cycles) at pc=0x%08x", ErrCycleBudget, maxCycles, m.pc)
		}
		if period > 0 && m.nextForced != power.NoFailure && satAdd(m.cycle, margin) >= m.nextForced {
			m.sys.ForceCheckpoint()
			for m.nextForced != power.NoFailure && m.nextForced <= satAdd(m.cycle, margin) {
				m.nextForced = satAdd(m.nextForced, period)
			}
			// The checkpoint advanced the clock past the checks above; the
			// reference path steps one instruction regardless, so take the
			// per-instruction path for this iteration instead of re-checking.
			if err := m.stepChecked(); err != nil {
				return err
			}
			continue
		}

		k := uint64(0)
		var in *isa.Instr
		if off := m.pc - textBase; m.pc%4 == 0 && off/4 < uint32(len(text)) {
			idx := off / 4
			if r := uint64(aluRun[idx]); r > 0 {
				k = batchHorizon(horizonInputs{
					run:          r,
					cycle:        m.cycle,
					instructions: m.c.Instructions,
					failEnabled:  m.failEnabled,
					nextFailure:  m.nextFailure,
					maxCycles:    maxCycles,
					maxInstr:     maxInstr,
					period:       period,
					margin:       margin,
					nextForced:   m.nextForced,
					stopAt:       m.stopAt,
				})
			} else if fLoad != nil || fStore != nil {
				in = &text[idx]
			}
		}
		if k == 0 {
			if in != nil && m.portStep(in, fLoad, fStore, fHitCyc) {
				continue
			}
			if err := m.stepChecked(); err != nil {
				return err
			}
			continue
		}
		m.execBatch(k)
	}
	return nil
}

// horizonInputs captures the machine state batchHorizon reads, so the
// horizon arithmetic is a pure function pinned by table-driven tests.
type horizonInputs struct {
	run          uint64 // pre-analyzed ALU run length at pc (> 0)
	cycle        uint64
	instructions uint64 // retired so far; caller checked < maxInstr
	failEnabled  bool
	nextFailure  uint64
	maxCycles    uint64 // 0 = unbounded; caller checked cycle < maxCycles
	maxInstr     uint64
	period       uint64 // 0 = no forced checkpoints
	margin       uint64
	nextForced   uint64
	stopAt       uint64 // 0 = no RunUntil bound; caller checked cycle < stopAt
}

// batchHorizon returns the safe horizon: the largest k ≤ run such that
// executing k batchable instructions from here triggers none of the
// per-instruction events. Each bound mirrors one reference-path check; when
// the horizon is 0 the reference step handles the instruction, including
// raising the power failure, forced checkpoint, or error at the exact same
// instant with the exact same state. All arithmetic saturates: near-2^64
// inputs (NoFailure-adjacent cycles, margin exceeding nextForced) must
// shrink the horizon to 0, never wrap to a huge bogus one.
func batchHorizon(in horizonInputs) uint64 {
	k := in.run
	if in.failEnabled {
		// Instruction i advances the clock to cycle+i+1, which must stay
		// strictly before the failure instant.
		if in.nextFailure <= in.cycle {
			return 0
		}
		if h := in.nextFailure - in.cycle - 1; h < k {
			k = h
		}
	}
	if in.maxCycles > 0 {
		if h := in.maxCycles - in.cycle; h < k {
			k = h
		}
	}
	if h := in.maxInstr - in.instructions; h < k {
		k = h
	}
	if in.period > 0 && in.nextForced != power.NoFailure {
		// Instruction i issues at cycle+i, which must stay below the forced
		// trigger satAdd(cycle+i, margin) >= nextForced. When cycle+margin
		// already reaches nextForced (or saturates) the horizon is 0; the
		// guarded form cannot underflow the way nextForced-margin-cycle did.
		h := uint64(0)
		if t := satAdd(in.cycle, in.margin); t < in.nextForced {
			h = in.nextForced - in.margin - in.cycle
		}
		if h < k {
			k = h
		}
	}
	if in.stopAt != 0 {
		if h := in.stopAt - in.cycle; h < k {
			k = h
		}
	}
	return k
}

// portStep executes one memory instruction through the system's fast port,
// or reports false so the caller takes the reference step. It replicates
// step()'s state transition for a plain cache hit exactly: one base cycle
// plus the fixed hit latency, the load/store counter, the destination
// register (with LB/LH sign extension), and pc+4 — declining on anything the
// reference path handles differently (non-memory ops, MMIO, misalignment,
// loads into x0/sp which carry setReg semantics, a cache miss or metadata
// transition inside the port, or a failure instant within this instruction's
// cycles, which the reference Advance must raise itself).
func (m *Machine) portStep(in *isa.Instr, fLoad func(uint32, int) (uint32, bool), fStore func(uint32, int, uint32) bool, hitCyc uint64) bool {
	var size int
	var isLoad bool
	switch in.Op {
	case isa.LW:
		size, isLoad = 4, true
	case isa.LH, isa.LHU:
		size, isLoad = 2, true
	case isa.LB, isa.LBU:
		size, isLoad = 1, true
	case isa.SW:
		size = 4
	case isa.SH:
		size = 2
	case isa.SB:
		size = 1
	default:
		return false
	}
	if isLoad {
		if fLoad == nil || in.Rd == isa.Zero || in.Rd == isa.SP {
			return false
		}
	} else if fStore == nil {
		return false
	}
	if m.failEnabled && m.nextFailure <= m.cycle+1+hitCyc {
		return false
	}
	addr := m.regs[in.Rs1] + uint32(in.Imm)
	if addr%uint32(size) != 0 || addr-MMIOBase < 0x1000 {
		return false
	}
	if isLoad {
		v, ok := fLoad(addr, size)
		if !ok {
			return false
		}
		switch in.Op {
		case isa.LB:
			v = uint32(int32(v<<24) >> 24)
		case isa.LH:
			v = uint32(int32(v<<16) >> 16)
		}
		m.c.Loads++
		m.regs[in.Rd] = v
	} else {
		val := m.regs[in.Rs2]
		switch size {
		case 1:
			val &= 0xFF
		case 2:
			val &= 0xFFFF
		}
		if !fStore(addr, size, val) {
			return false
		}
		m.c.Stores++
	}
	m.cycle += 1 + hitCyc
	m.c.Instructions++
	m.pc += 4
	return true
}

// stepChecked is one reference-path instruction plus the stack-fault check
// that follows every step.
func (m *Machine) stepChecked() error {
	if err := m.step(); err != nil {
		return err
	}
	if m.stackFault {
		return fmt.Errorf("emu: stack pointer 0x%08x left the stack region at pc=0x%08x", m.regs[isa.SP], m.pc)
	}
	return nil
}

// execBatch executes n batchable instructions starting at the current pc in
// a tight loop with no per-instruction checks, then charges the clock, the
// instruction counter, and the pc once. The caller guarantees (via the safe
// horizon) that no power failure, forced checkpoint, or budget limit can
// fire inside the batch, and the analysis guarantees every instruction is
// register-only straight-line compute with Rd ∉ {x0, sp}.
func (m *Machine) execBatch(n uint64) {
	var (
		text = m.text
		regs = &m.regs
		pc   = m.pc
		idx  = (pc - m.textBase) / 4
	)
	for end := idx + uint32(n); idx < end; idx++ {
		in := &text[idx]
		rs1 := regs[in.Rs1]
		rs2 := regs[in.Rs2]
		imm := uint32(in.Imm)
		var v uint32
		switch in.Op {
		case isa.ADDI:
			v = rs1 + imm
		case isa.ADD:
			v = rs1 + rs2
		case isa.LUI:
			v = imm
		case isa.AUIPC:
			v = pc + imm
		case isa.SLTI:
			v = boolToU32(int32(rs1) < int32(imm))
		case isa.SLTIU:
			v = boolToU32(rs1 < imm)
		case isa.XORI:
			v = rs1 ^ imm
		case isa.ORI:
			v = rs1 | imm
		case isa.ANDI:
			v = rs1 & imm
		case isa.SLLI:
			v = rs1 << (imm & 31)
		case isa.SRLI:
			v = rs1 >> (imm & 31)
		case isa.SRAI:
			v = uint32(int32(rs1) >> (imm & 31))
		case isa.SUB:
			v = rs1 - rs2
		case isa.SLL:
			v = rs1 << (rs2 & 31)
		case isa.SLT:
			v = boolToU32(int32(rs1) < int32(rs2))
		case isa.SLTU:
			v = boolToU32(rs1 < rs2)
		case isa.XOR:
			v = rs1 ^ rs2
		case isa.SRL:
			v = rs1 >> (rs2 & 31)
		case isa.SRA:
			v = uint32(int32(rs1) >> (rs2 & 31))
		case isa.OR:
			v = rs1 | rs2
		case isa.AND:
			v = rs1 & rs2
		case isa.MUL:
			v = rs1 * rs2
		case isa.MULH:
			v = uint32(uint64(int64(int32(rs1))*int64(int32(rs2))) >> 32)
		case isa.MULHSU:
			v = uint32(uint64(int64(int32(rs1))*int64(rs2)) >> 32)
		case isa.MULHU:
			v = uint32(uint64(rs1) * uint64(rs2) >> 32)
		case isa.DIV:
			v = divSigned(rs1, rs2)
		case isa.DIVU:
			if rs2 == 0 {
				v = ^uint32(0)
			} else {
				v = rs1 / rs2
			}
		case isa.REM:
			v = remSigned(rs1, rs2)
		case isa.REMU:
			if rs2 == 0 {
				v = rs1
			} else {
				v = rs1 % rs2
			}
		}
		regs[in.Rd] = v
		pc += 4
	}
	m.pc = pc
	m.cycle += n
	m.c.Instructions += n
}
