package nacho

import (
	"nacho/internal/harness"
	"nacho/internal/snapshot"
	"nacho/internal/telemetry"
)

// TelemetryServer is a live observability endpoint for this process's
// simulations. It serves:
//
//	/metrics        Prometheus text exposition (harness + simulation series)
//	/metrics.json   the same registry as a JSON snapshot
//	/status         live worker-pool and experiment progress
//	/dashboard      live HTML dashboard (worker occupancy, rates, histograms)
//	/debug/pprof/   the standard Go profiler
//
// The harness series (nacho_harness_*: runs started/completed, cache hits,
// busy workers, simulated cycles and throughput) track every run in the
// process, including experiment sweeps. The simulation series (nacho_sim_*:
// accesses, write-backs by verdict, checkpoints by kind, power failures, NVM
// traffic) additionally aggregate the event streams of runs that set
// Config.Telemetry to this server.
type TelemetryServer struct {
	srv   *telemetry.Server
	reg   *telemetry.Registry
	probe *telemetry.Probe
}

// ServeTelemetry starts a telemetry server on addr ("127.0.0.1:0" picks a
// free port; read it back with Addr). Close it when the run or sweep is done.
func ServeTelemetry(addr string) (*TelemetryServer, error) {
	reg := telemetry.NewRegistry()
	harness.RegisterMetrics(reg)
	snapshot.RegisterMetrics(reg)
	if s := harness.ActiveStore(); s != nil {
		s.RegisterMetrics(reg) // nacho_store_*: open the RunStore before serving
	}
	probe := telemetry.NewProbe(reg)
	srv, err := telemetry.NewServer(addr, reg, func() any { return harness.Status() })
	if err != nil {
		return nil, err
	}
	return &TelemetryServer{srv: srv, reg: reg, probe: probe}, nil
}

// Addr returns the server's bound listen address.
func (t *TelemetryServer) Addr() string { return t.srv.Addr() }

// Close gracefully shuts the server down.
func (t *TelemetryServer) Close() error { return t.srv.Close() }
